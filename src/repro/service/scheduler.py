"""The job scheduler: bounded queue + worker pool around ``construct_tree``.

Responsibilities, in the order a request meets them:

1. **Admission control** -- the queue is bounded; a saturated scheduler
   raises the typed :class:`~repro.service.errors.QueueFull` immediately
   instead of blocking, so overload sheds work at the front door.
2. **Deduplication** -- a submission whose cache key matches a job that
   is already queued or running returns *that* job instead of enqueuing
   a copy; any number of callers share one execution and one result.
3. **Caching** -- each worker consults the content-addressed
   :class:`~repro.service.cache.ResultCache` before solving and stores
   the payload after, so repeated matrices are answered in microseconds.
4. **Observability** -- every executed job runs inside a ``service.job``
   span on the shared :class:`repro.obs.Recorder`, with ``cache.hit`` /
   ``cache.miss`` / ``queue.rejected`` / ``queue.deduped`` counters in
   the same schema-v1 stream the engines already emit.
5. **Graceful shutdown** -- ``shutdown(drain=True)`` stops admissions,
   lets queued and running jobs finish, and joins every worker thread;
   ``drain=False`` cancels whatever has not started yet.

Execution is pluggable (``backend=``):

``"thread"``
    Jobs run on plain worker threads.  Cheapest per job; right for
    cache-heavy traffic and the numpy-release-the-GIL heuristics.
``"process"``
    Each worker thread owns a supervised worker *process*
    (:class:`repro.parallel.executor.WorkerSlot`) and ships the solve to
    it, so concurrent exact B&B solves -- pure-Python object
    manipulation that holds the GIL -- scale across cores.  The child
    re-materialises the matrix from plain floats (bit-exact transport),
    runs the same runner, and ships back the payload *plus* its
    span/counter events and metric mutations; the parent re-bases the
    events into its own trace (:meth:`repro.obs.Recorder.ingest`) and
    replays the metrics (:func:`repro.obs.metrics.replay_metric_ops`),
    so ``/metrics`` and JSONL traces are as complete as with threads.
    The payload's reported cost is re-verified against its Newick
    reconstruction to 1e-9 on receipt.  A worker process that dies
    mid-job settles the job as ``FAILED`` with a typed
    ``WorkerCrashed: ...`` message and the slot respawns; one that runs
    past the job's deadline is terminated (``TIMEOUT``) and respawned --
    never a silent hang, never a shrinking pool.

:func:`select_backend` picks ``"process"`` for exact methods (the GIL
is the bottleneck) and ``"thread"`` otherwise; the cache and recorder
stay parent-side in both backends, so N stateless replicas sharing one
on-disk cache directory behave identically.
"""

from __future__ import annotations

import functools
import queue as _queue
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.metrics import (
    ForwardingMetricsRegistry,
    MetricsRegistry,
    as_metrics,
    replay_metric_ops,
)
from repro.obs.progress import ProgressTracker, progress_context
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    as_recorder,
    trace_context,
)
from repro.parallel.executor import (
    RemoteTaskError,
    WorkerCrashed,
    WorkerSlot,
    WorkerTimeout,
    emit_slot_progress,
)
from repro.service.cache import ResultCache, cache_key
from repro.service.errors import QueueFull, SchedulerClosed
from repro.service.jobs import Job, JobState

__all__ = [
    "BACKENDS",
    "Scheduler",
    "select_backend",
    "solve_payload",
]

#: Queue sentinel telling a worker thread to exit.
_STOP = object()

#: Execution backends the scheduler understands.
BACKENDS = ("thread", "process")

#: Methods whose solves are GIL-bound pure-Python search; these default
#: to the process backend under :func:`select_backend`.
PROCESS_DEFAULT_METHODS = frozenset({
    "compact", "compact-parallel", "bnb", "bnb-scalar",
    "parallel-bnb", "multiprocess",
})

#: Tolerance for the on-receipt payload cost re-verification.
_RECEIPT_EPS = 1e-9

#: Terminal job state -> statistics bucket.
_STATE_STAT = {
    JobState.DONE: "completed",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
    JobState.TIMEOUT: "timed_out",
}


def select_backend(default_method: str) -> str:
    """The execution backend best suited to ``default_method``.

    Exact solvers are GIL-bound pure-Python search, so they get worker
    *processes*; heuristics are numpy-vectorised (release the GIL) and
    sub-millisecond, so thread dispatch wins on latency.
    """
    return (
        "process" if default_method in PROCESS_DEFAULT_METHODS else "thread"
    )


def solve_payload(
    matrix: DistanceMatrix,
    method: str = "compact",
    options: Optional[dict] = None,
    recorder: Optional[NullRecorder] = None,
) -> dict:
    """Run one construction and shape the JSON-serializable payload.

    This is the scheduler's default runner.  ``options`` are engine
    keyword arguments; the special key ``workers`` is lifted out into a
    :class:`ClusterConfig` for the parallel methods.
    """
    from repro.core.api import construct_tree
    from repro.parallel.config import ClusterConfig
    from repro.tree.newick import to_newick

    options = dict(options or {})
    workers = options.pop("workers", None)
    cluster = ClusterConfig(n_workers=int(workers)) if workers else None
    result = construct_tree(
        matrix, method, cluster=cluster, recorder=recorder, **options
    )
    if method == "nj":
        newick = result.tree.newick()
    else:
        # 12 fixed decimals: the payload is what ``verify: true`` checks
        # the reported cost against, so serialization must not round the
        # reconstruction outside the cost oracle's 1e-9 tolerance.
        newick = to_newick(result.tree, precision=12)
    return {
        "method": result.method,
        "n_species": matrix.n,
        "cost": float(result.cost),
        "newick": newick,
    }


def _process_job_task(runner: Callable, task: tuple) -> dict:
    """Execute one job inside a worker process (the slot-side runner).

    ``task`` is the picklable tuple the parent ships: plain-float matrix
    rows and labels (floats survive pickling bit-exactly, so the child's
    cache key and costs match the parent's), the method/options, the
    originating request's ``trace_id``, and whether to collect events.

    The child runs ``runner`` under a fresh :class:`Recorder` and a
    :class:`ForwardingMetricsRegistry` temporarily installed as the
    process-wide default registry, then returns everything the parent
    needs to make its own exports complete: the payload, the serialized
    events, the child-clock origin (for re-basing timestamps) and the
    metric ops.

    A :class:`~repro.obs.progress.ProgressTracker` is bound around the
    runner whose sink ships each snapshot through
    :func:`~repro.parallel.executor.emit_slot_progress` -- live
    telemetry that reaches the parent's ``call()`` *while the solve
    runs*, each message carrying the child clock reading and origin so
    the parent can re-base it.  The tracker also records ``bnb.progress``
    events on the child recorder; those travel once, with the final
    payload, via the normal event forwarding.
    """
    from repro.obs import metrics as _metrics_mod

    values, labels, method, options, trace_id, collect_events = task
    matrix = DistanceMatrix(values, labels)
    rec = Recorder() if collect_events else as_recorder(None)
    clock0 = rec.clock()
    forward = ForwardingMetricsRegistry()
    previous_registry = _metrics_mod.REGISTRY
    _metrics_mod.REGISTRY = forward

    def _ship(snapshot: dict, _clock=rec.clock) -> None:
        emit_slot_progress({
            "snapshot": snapshot,
            "time": _clock(),
            "clock0": clock0,
            "trace_id": trace_id,
        })

    tracker = ProgressTracker(
        recorder=rec if collect_events else None, sink=_ship
    )
    try:
        with trace_context(trace_id), progress_context(tracker):
            payload = runner(
                matrix, method, options, rec if collect_events else None
            )
    finally:
        _metrics_mod.REGISTRY = previous_registry
    return {
        "payload": payload,
        "events": (
            [event.to_json() for event in rec.events]
            if collect_events else []
        ),
        "clock0": clock0,
        "metric_ops": forward.drain_ops(),
        "trace_id": trace_id,
    }


class Scheduler:
    """Bounded-queue worker pool executing tree-construction jobs.

    Parameters
    ----------
    workers:
        Worker-thread count.
    queue_size:
        Bound on *queued* (not yet running) jobs; beyond it
        :meth:`submit` raises :class:`QueueFull`.
    cache:
        A :class:`ResultCache`; a fresh in-memory cache of 256 entries
        is created when omitted.
    recorder:
        Shared :class:`repro.obs.Recorder` for spans and counters
        (defaults to the no-op recorder).
    metrics:
        :class:`repro.obs.metrics.MetricsRegistry` for the always-on
        aggregates -- ``service.job.seconds`` latency histogram,
        ``service.queue.depth`` / ``service.inflight`` gauges (computed
        at scrape time), cache and queue counters.  Defaults to the
        process-wide registry, so metrics are live even when tracing is
        off; pass :data:`repro.obs.metrics.NULL_METRICS` to disable.
    default_timeout:
        Deadline in seconds applied to jobs submitted without their own
        ``timeout``.  ``None`` means no deadline.
    runner:
        ``(matrix, method, options, recorder) -> payload`` callable; the
        default is :func:`solve_payload`.  Tests inject slow or failing
        runners here.  With ``backend="process"`` the runner executes in
        the worker *process*; under the ``spawn`` start method it must
        therefore be picklable (the default is).
    max_jobs_retained:
        Finished jobs kept for ``GET /jobs/<id>`` lookups; the oldest
        finished jobs are forgotten beyond this bound.
    backend:
        ``"thread"`` (default) or ``"process"`` -- see the module
        docstring.  :func:`select_backend` maps a serving method to the
        right one.
    start_method:
        Forces a :mod:`multiprocessing` start method for the process
        backend (``"fork"``/``"spawn"``/``"forkserver"``); the
        platform's cheapest is used when omitted.  Ignored by the
        thread backend.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        queue_size: int = 64,
        cache: Optional[ResultCache] = None,
        recorder: Optional[NullRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_timeout: Optional[float] = None,
        runner: Optional[Callable] = None,
        max_jobs_retained: int = 1024,
        backend: str = "thread",
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue size must be >= 1, got {queue_size}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        self.backend = backend
        self.cache = cache if cache is not None else ResultCache()
        self.recorder = as_recorder(recorder)
        self.metrics = as_metrics(metrics)
        self.default_timeout = default_timeout
        self.queue_size = queue_size
        self._runner = runner or solve_payload
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._inflight: Dict[str, Job] = {}
        self._max_jobs_retained = max_jobs_retained
        self._closed = False
        self._abandon = False
        self._next_job = 1
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timed_out": 0,
            "rejected": 0,
            "deduped": 0,
        }
        m = self.metrics
        self._m_job_seconds = m.histogram(
            "service.job.seconds",
            "End-to-end job execution latency, per method and cache outcome.",
            labelnames=("method", "cache"),
        )
        self._m_cache_hit = m.counter(
            "cache.hit", "Content-addressed result-cache hits."
        )
        self._m_cache_miss = m.counter(
            "cache.miss", "Content-addressed result-cache misses."
        )
        self._m_rejected = m.counter(
            "queue.rejected", "Submissions shed by queue admission control."
        )
        self._m_deduped = m.counter(
            "queue.deduped", "Submissions merged into an in-flight job."
        )
        self._m_jobs = m.counter(
            "service.jobs", "Jobs settled, by terminal state.",
            labelnames=("state",),
        )
        self._m_worker_errors = m.counter(
            "service.worker.errors",
            "Jobs settled by the worker loop's last-resort isolation "
            "(an exception escaped normal job execution).",
        )
        self._m_crashes = m.counter(
            "service.workers.crashed",
            "Worker processes that died mid-job (slot respawned).",
        )
        # Progress gauges are set from forwarded worker snapshots (the
        # forwarding registry deliberately does not forward gauges) and,
        # on the thread backend, by the job's own ProgressTracker.
        self._m_bnb_gap = m.gauge(
            "bnb.gap",
            "Relative incumbent/lower-bound gap of the current "
            "branch-and-bound search",
        )
        self._m_bnb_nps = m.gauge(
            "bnb.nodes_per_second",
            "Node-expansion rate of the current branch-and-bound search",
        )
        # Scrape-time gauges can never go stale; the last-constructed
        # scheduler on a shared registry owns them, which matches the
        # one-scheduler-per-process serving reality.
        m.gauge(
            "service.queue.depth", "Jobs queued but not yet running."
        ).set_function(self._queue.qsize)
        m.gauge(
            "service.inflight", "Jobs queued or running (dedup map size)."
        ).set_function(lambda: len(self._inflight))
        # Only *live* workers count as capacity: a crashed worker must
        # show up as lost capacity, not padding in the workers gauge.
        m.gauge(
            "service.workers",
            "Live workers serving the job queue (dead ones excluded).",
        ).set_function(self._live_worker_count)
        m.gauge(
            "service.workers.dead",
            "Workers lost to crashes and not yet replaced (0 once the "
            "scheduler is deliberately shut down).",
        ).set_function(self._dead_worker_count)
        m.gauge(
            "service.workers.respawns",
            "Worker-process slots respawned after a crash or a "
            "deadline termination.",
        ).set_function(
            lambda: sum(slot.respawns for slot in self._slots.values())
        )
        self._slots: Dict[int, WorkerSlot] = {}
        if backend == "process":
            slot_runner = functools.partial(_process_job_task, self._runner)
            for i in range(workers):
                self._slots[i] = WorkerSlot(
                    i,
                    slot_runner,
                    start_method=start_method,
                    name_prefix="repro-svc-proc",
                    what="worker process",
                ).start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-svc-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    def _live_worker_count(self) -> int:
        """Workers actually able to take jobs (dead threads excluded)."""
        return sum(1 for thread in self._workers if thread.is_alive())

    def _dead_worker_count(self) -> int:
        """Crash-induced capacity loss (0 after a deliberate shutdown)."""
        if self._closed:
            return 0
        return len(self._workers) - self._live_worker_count()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: DistanceMatrix,
        method: str = "compact",
        options: Optional[dict] = None,
        *,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        verify: bool = False,
    ) -> Job:
        """Queue one construction; returns a :class:`Job` handle.

        Raises :class:`SchedulerClosed` after shutdown began and
        :class:`QueueFull` when the bounded queue is saturated.  A
        submission identical (same cache key *and* same ``verify``
        flag) to a queued or running job returns that job -- note the
        shared job keeps the *first* submission's deadline and the first
        submission's ``trace_id`` (the events it causes can only carry
        one id).  ``verify`` does not change the cache key (the solved
        payload is identical either way); it only asks the worker to run
        the result oracles on whatever the cache or engine produced.
        """
        options = dict(options or {})
        key = cache_key(matrix, method, options)
        if timeout is None:
            timeout = self.default_timeout
        with self._lock:
            if self._closed:
                raise SchedulerClosed()
            existing = self._inflight.get((key, verify))
            if existing is not None and not existing.done:
                self._stats["deduped"] += 1
                self.recorder.counter("queue.deduped", key=key[:12])
                self._m_deduped.inc()
                return existing
            job = Job(
                f"job-{self._next_job}", key, matrix, method, options,
                timeout, trace_id, verify,
            )
            self._next_job += 1
            try:
                self._queue.put_nowait(job)
            except _queue.Full:
                self._stats["rejected"] += 1
                self.recorder.counter("queue.rejected", key=key[:12])
                self._m_rejected.inc()
                raise QueueFull(self.queue_size) from None
            self._stats["submitted"] += 1
            self._jobs[job.id] = job
            self._inflight[(key, verify)] = job
        return job

    def solve(
        self,
        matrix: DistanceMatrix,
        method: str = "compact",
        options: Optional[dict] = None,
        *,
        timeout: Optional[float] = None,
    ) -> dict:
        """Submit and block for the payload (convenience wrapper)."""
        return self.submit(matrix, method, options).result(timeout)

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id (``None`` when unknown or pruned)."""
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        slot = self._slots.get(index)
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            try:
                self._execute(item, slot)
            except Exception as exc:  # noqa: BLE001 - last-resort isolation
                # Nothing may escape past this point: an exception that
                # killed the thread here would silently shrink the pool
                # (and with it the service's capacity) forever.  Settle
                # the job as FAILED and keep serving.
                self._settle_crashed(item, exc)
            finally:
                self._queue.task_done()

    def _settle_crashed(self, job: Job, exc: BaseException) -> None:
        """Settle a job whose execution path itself blew up (satellite
        of the crash sweep: e.g. a recorder raising inside span exit,
        *after* ``_execute``'s own error handling already passed)."""
        self._m_worker_errors.inc()
        try:
            job._finish(
                JobState.FAILED,
                error=(
                    "internal scheduler error: "
                    f"{type(exc).__name__}: {exc}"
                ),
            )
            self._settle(job, _STATE_STAT.get(job.state, "failed"))
        except Exception:  # noqa: BLE001 - never kill the worker thread
            pass

    def _execute(self, job: Job, slot: Optional[WorkerSlot] = None) -> None:
        rec = self.recorder
        if self._abandon:
            job._finish(
                JobState.CANCELLED, error="scheduler shut down before start"
            )
            self._settle(job, "cancelled")
            return
        if job._expired():
            job._finish(
                JobState.TIMEOUT,
                error=f"deadline of {job.timeout:g}s passed while queued",
            )
            self._settle(job, "timed_out")
            return
        if not job._mark_running():
            # Cancelled, or self-expired via ``Job.expire_if_queued``,
            # while queued; reconcile statistics for whichever it was.
            self._settle(job, _STATE_STAT.get(job.state, "cancelled"))
            return
        cache_status = "error"
        t0 = time.perf_counter()
        try:
            with trace_context(job.trace_id), rec.span(
                "service.job",
                job=job.id,
                method=job.method,
                n=job.matrix.n,
                key=job.key[:12],
                backend=self.backend,
            ):
                payload = self.cache.get(job.key)
                if payload is not None:
                    cache_status = "hit"
                    rec.counter("cache.hit", key=job.key[:12])
                    self._m_cache_hit.inc()
                else:
                    cache_status = "miss"
                    rec.counter("cache.miss", key=job.key[:12])
                    self._m_cache_miss.inc()
                    if slot is not None:
                        payload = self._run_in_slot(slot, job, rec)
                    else:
                        tracker = ProgressTracker(
                            recorder=rec,
                            metrics=self.metrics,
                            sink=functools.partial(
                                self._publish_progress, job
                            ),
                        )
                        with progress_context(tracker):
                            payload = self._runner(
                                job.matrix, job.method, job.options, rec
                            )
                    self.cache.put(job.key, payload)
                if job.verify:
                    job.verification = self._verify_payload(job, payload)
        except WorkerTimeout as exc:
            rec.counter("job.timeout", job=job.id)
            self._observe_job(job, "error", t0)
            job._finish(
                JobState.TIMEOUT,
                error=(
                    f"deadline of {job.timeout:g}s passed while running; "
                    f"{exc}"
                ),
            )
            self._settle(job, "timed_out")
            return
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            rec.counter("job.failed", job=job.id)
            self._observe_job(job, "error", t0)
            if isinstance(exc, RemoteTaskError):
                # The child already formatted its traceback; surface the
                # original exception type and message, not the wrapper's
                # multi-line transport representation.
                error = f"{exc.exc_type}: {exc.message}"
            else:
                error = f"{type(exc).__name__}: {exc}"
            job._finish(JobState.FAILED, error=error)
            self._settle(job, "failed")
            return
        self._observe_job(job, cache_status, t0)
        if job._expired():
            # The result is cached for future callers, but this caller's
            # deadline has passed; report the timeout honestly.
            job._finish(
                JobState.TIMEOUT,
                error=f"deadline of {job.timeout:g}s passed while running",
                cache_status=cache_status,
            )
            self._settle(job, "timed_out")
            return
        job._finish(JobState.DONE, payload=payload, cache_status=cache_status)
        self._settle(job, "completed")

    def _run_in_slot(
        self, slot: WorkerSlot, job: Job, rec: NullRecorder
    ) -> dict:
        """Ship one solve to the worker process and absorb its telemetry.

        Raises :class:`WorkerCrashed` / :class:`WorkerTimeout` /
        :class:`RemoteTaskError` (the caller maps them onto job states);
        on success the child's events are re-based into the parent trace
        and its metric mutations replayed into the parent registry.
        """
        task = (
            job.matrix.values.tolist(),
            list(job.matrix.labels),
            job.method,
            dict(job.options),
            job.trace_id,
            rec.enabled,
        )
        t_dispatch = rec.clock()
        on_progress = functools.partial(
            self._absorb_progress, job, t_dispatch
        )
        try:
            out = slot.call(
                task, deadline=job.deadline, on_progress=on_progress
            )
        except WorkerCrashed:
            rec.counter("worker.crashed", worker=slot.worker_id)
            self._m_crashes.inc()
            raise
        if rec.enabled and out["events"]:
            # perf_counter origins differ between processes; anchor the
            # child's clock origin at our dispatch time (the earliest
            # parent-side instant the child could have started).
            rec.ingest(out["events"], offset=t_dispatch - out["clock0"])
        if out["metric_ops"]:
            replay_metric_ops(self.metrics, out["metric_ops"])
        payload = out["payload"]
        self._verify_receipt(job, payload)
        return payload

    def _publish_progress(self, job: Job, snapshot: dict) -> None:
        """Thread-backend progress sink: latest snapshot onto the job."""
        snap = dict(snapshot)
        snap["time"] = self.recorder.clock()
        if job.trace_id is not None:
            snap["trace_id"] = job.trace_id
        job.progress = snap

    def _absorb_progress(
        self, job: Job, t_dispatch: float, message: dict
    ) -> None:
        """Process-backend progress sink: a worker snapshot arriving
        mid-``call()``.  The child's clock reading is re-based onto this
        process's clock (dispatch time anchors the child's origin, the
        same offset model event ingestion uses), the job's trace id is
        stamped, and the parent-side gauges updated -- the forwarding
        registry never forwards gauges, so this is where ``bnb.gap``
        goes live during a process-backend solve."""
        snapshot = message.get("snapshot")
        if not isinstance(snapshot, dict):
            return
        snap = dict(snapshot)
        child_time = message.get("time")
        child_clock0 = message.get("clock0")
        if child_time is not None and child_clock0 is not None:
            snap["time"] = t_dispatch + (child_time - child_clock0)
        trace_id = message.get("trace_id") or job.trace_id
        if trace_id is not None:
            snap["trace_id"] = trace_id
        job.progress = snap
        gap = snap.get("gap")
        if gap is not None:
            self._m_bnb_gap.set(gap)
        nps = snap.get("nodes_per_second")
        if nps is not None:
            self._m_bnb_nps.set(nps)

    def _verify_receipt(self, job: Job, payload: dict) -> None:
        """Prove a process-transported payload before accepting it.

        The reported cost must match the cost recomputed from the
        payload's own Newick string to 1e-9 -- a corrupted or truncated
        transport therefore fails the job instead of poisoning the
        cache.  Only meaningful for the default runner's payload shape
        (test runners ship arbitrary dicts) and skipped for ``nj``
        (additive trees have no ultrametric cost to recompute).
        """
        if self._runner is not solve_payload or job.method == "nj":
            return
        newick = payload.get("newick")
        cost = payload.get("cost")
        if newick is None or cost is None:
            return
        from repro.tree.newick import parse_newick

        recomputed = parse_newick(newick).cost()
        if abs(recomputed - float(cost)) > _RECEIPT_EPS:
            raise RuntimeError(
                f"worker payload failed receipt verification: reported "
                f"cost {cost!r} but its newick reconstructs to "
                f"{recomputed!r} (|delta| > {_RECEIPT_EPS:g})"
            )

    def _verify_payload(self, job: Job, payload: dict) -> dict:
        """Run the result oracles on a solved (or cached) payload.

        The tree is reconstructed from the payload's Newick string --
        deliberately: the oracles then cover exactly what a client
        receives, including cache corruption and serialization drift.
        Each oracle runs inside a ``verify.oracle`` span on the shared
        recorder and every violation bumps the
        ``verify.violations{oracle}`` metric.  Verification never fails
        the job; the findings ride along in the job record.
        """
        from repro.tree.newick import parse_newick
        from repro.verify.oracles import ORACLE_NAMES, run_oracles

        if job.method == "nj":
            return {
                "skipped": "nj trees are additive; the ultrametric "
                           "oracles do not apply",
            }
        tree = parse_newick(payload["newick"])
        violations = run_oracles(
            tree,
            job.matrix,
            reported_cost=payload.get("cost"),
            method=job.method,
            recorder=self.recorder,
            metrics=self.metrics,
        )
        return {
            "ok": not violations,
            "oracles": list(ORACLE_NAMES),
            "violations": [v.to_json() for v in violations],
        }

    def _observe_job(self, job: Job, cache_status: str, t0: float) -> None:
        self._m_job_seconds.observe(
            time.perf_counter() - t0, method=job.method, cache=cache_status
        )

    def _settle(self, job: Job, stat: str) -> None:
        """Post-terminal bookkeeping: statistics, dedup map, retention.

        Idempotent per job: a job can reach a terminal state through
        more than one path (e.g. ``Job.expire_if_queued`` at the
        deadline *and* the worker dequeuing it later), but it must be
        counted exactly once."""
        with self._lock:
            if job._settled:
                return
            job._settled = True
            self._stats[stat] += 1
            if self._inflight.get((job.key, job.verify)) is job:
                del self._inflight[(job.key, job.verify)]
            self._finished_order.append(job.id)
            while len(self._finished_order) > self._max_jobs_retained:
                stale = self._finished_order.pop(0)
                self._jobs.pop(stale, None)
        self._m_jobs.inc(state=stat)

    # ------------------------------------------------------------------
    # introspection and shutdown
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot for the ``/stats`` endpoint."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot.update(
                backend=self.backend,
                workers=len(self._workers),
                workers_live=self._live_worker_count(),
                workers_dead=self._dead_worker_count(),
                queue_size=self.queue_size,
                queue_depth=self._queue.qsize(),
                inflight=len(self._inflight),
                closed=self._closed,
            )
            if self._slots:
                snapshot["worker_pids"] = {
                    str(i): slot.pid
                    for i, slot in sorted(self._slots.items())
                }
                snapshot["worker_respawns"] = sum(
                    slot.respawns for slot in self._slots.values()
                )
        snapshot["cache"] = self.cache.stats()
        snapshot["metrics"] = self.metrics.snapshot()
        return snapshot

    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the scheduler; returns whether every worker exited.

        ``drain=True`` (the default) finishes all queued and running
        jobs first.  ``drain=False`` cancels jobs that have not started;
        the currently running ones still run to completion (threads
        cannot be killed safely).  ``timeout`` bounds the join of each
        worker thread.  Idempotent.
        """
        with self._lock:
            first_call = not self._closed
            self._closed = True
        if first_call:
            if not drain:
                self._abandon = True
                with self._lock:
                    pending = [
                        job for job in self._jobs.values()
                        if job.state == JobState.PENDING
                    ]
                for job in pending:
                    job.cancel()
            for _ in self._workers:
                self._queue.put(_STOP)
        clean = True
        for thread in self._workers:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        for slot in self._slots.values():
            clean = slot.stop() and clean
        return clean

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)
