"""The job scheduler: bounded queue + worker pool around ``construct_tree``.

Responsibilities, in the order a request meets them:

1. **Admission control** -- the queue is bounded; a saturated scheduler
   raises the typed :class:`~repro.service.errors.QueueFull` immediately
   instead of blocking, so overload sheds work at the front door.
2. **Deduplication** -- a submission whose cache key matches a job that
   is already queued or running returns *that* job instead of enqueuing
   a copy; any number of callers share one execution and one result.
3. **Caching** -- each worker consults the content-addressed
   :class:`~repro.service.cache.ResultCache` before solving and stores
   the payload after, so repeated matrices are answered in microseconds.
4. **Observability** -- every executed job runs inside a ``service.job``
   span on the shared :class:`repro.obs.Recorder`, with ``cache.hit`` /
   ``cache.miss`` / ``queue.rejected`` / ``queue.deduped`` counters in
   the same schema-v1 stream the engines already emit.
5. **Graceful shutdown** -- ``shutdown(drain=True)`` stops admissions,
   lets queued and running jobs finish, and joins every worker thread;
   ``drain=False`` cancels whatever has not started yet.

Workers are plain threads: the engines are numpy-heavy (release the GIL
in the vectorised paths) and jobs are short, so threads beat processes
on latency while keeping the cache and recorder trivially shared.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.metrics import MetricsRegistry, as_metrics
from repro.obs.recorder import NullRecorder, as_recorder, trace_context
from repro.service.cache import ResultCache, cache_key
from repro.service.errors import QueueFull, SchedulerClosed
from repro.service.jobs import Job, JobState

__all__ = ["Scheduler", "solve_payload"]

#: Queue sentinel telling a worker thread to exit.
_STOP = object()


def solve_payload(
    matrix: DistanceMatrix,
    method: str = "compact",
    options: Optional[dict] = None,
    recorder: Optional[NullRecorder] = None,
) -> dict:
    """Run one construction and shape the JSON-serializable payload.

    This is the scheduler's default runner.  ``options`` are engine
    keyword arguments; the special key ``workers`` is lifted out into a
    :class:`ClusterConfig` for the parallel methods.
    """
    from repro.core.api import construct_tree
    from repro.parallel.config import ClusterConfig
    from repro.tree.newick import to_newick

    options = dict(options or {})
    workers = options.pop("workers", None)
    cluster = ClusterConfig(n_workers=int(workers)) if workers else None
    result = construct_tree(
        matrix, method, cluster=cluster, recorder=recorder, **options
    )
    if method == "nj":
        newick = result.tree.newick()
    else:
        # 12 fixed decimals: the payload is what ``verify: true`` checks
        # the reported cost against, so serialization must not round the
        # reconstruction outside the cost oracle's 1e-9 tolerance.
        newick = to_newick(result.tree, precision=12)
    return {
        "method": result.method,
        "n_species": matrix.n,
        "cost": float(result.cost),
        "newick": newick,
    }


class Scheduler:
    """Bounded-queue worker pool executing tree-construction jobs.

    Parameters
    ----------
    workers:
        Worker-thread count.
    queue_size:
        Bound on *queued* (not yet running) jobs; beyond it
        :meth:`submit` raises :class:`QueueFull`.
    cache:
        A :class:`ResultCache`; a fresh in-memory cache of 256 entries
        is created when omitted.
    recorder:
        Shared :class:`repro.obs.Recorder` for spans and counters
        (defaults to the no-op recorder).
    metrics:
        :class:`repro.obs.metrics.MetricsRegistry` for the always-on
        aggregates -- ``service.job.seconds`` latency histogram,
        ``service.queue.depth`` / ``service.inflight`` gauges (computed
        at scrape time), cache and queue counters.  Defaults to the
        process-wide registry, so metrics are live even when tracing is
        off; pass :data:`repro.obs.metrics.NULL_METRICS` to disable.
    default_timeout:
        Deadline in seconds applied to jobs submitted without their own
        ``timeout``.  ``None`` means no deadline.
    runner:
        ``(matrix, method, options, recorder) -> payload`` callable; the
        default is :func:`solve_payload`.  Tests inject slow or failing
        runners here.
    max_jobs_retained:
        Finished jobs kept for ``GET /jobs/<id>`` lookups; the oldest
        finished jobs are forgotten beyond this bound.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        queue_size: int = 64,
        cache: Optional[ResultCache] = None,
        recorder: Optional[NullRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        default_timeout: Optional[float] = None,
        runner: Optional[Callable] = None,
        max_jobs_retained: int = 1024,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue size must be >= 1, got {queue_size}")
        self.cache = cache if cache is not None else ResultCache()
        self.recorder = as_recorder(recorder)
        self.metrics = as_metrics(metrics)
        self.default_timeout = default_timeout
        self.queue_size = queue_size
        self._runner = runner or solve_payload
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._inflight: Dict[str, Job] = {}
        self._max_jobs_retained = max_jobs_retained
        self._closed = False
        self._abandon = False
        self._next_job = 1
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timed_out": 0,
            "rejected": 0,
            "deduped": 0,
        }
        m = self.metrics
        self._m_job_seconds = m.histogram(
            "service.job.seconds",
            "End-to-end job execution latency, per method and cache outcome.",
            labelnames=("method", "cache"),
        )
        self._m_cache_hit = m.counter(
            "cache.hit", "Content-addressed result-cache hits."
        )
        self._m_cache_miss = m.counter(
            "cache.miss", "Content-addressed result-cache misses."
        )
        self._m_rejected = m.counter(
            "queue.rejected", "Submissions shed by queue admission control."
        )
        self._m_deduped = m.counter(
            "queue.deduped", "Submissions merged into an in-flight job."
        )
        self._m_jobs = m.counter(
            "service.jobs", "Jobs settled, by terminal state.",
            labelnames=("state",),
        )
        # Scrape-time gauges can never go stale; the last-constructed
        # scheduler on a shared registry owns them, which matches the
        # one-scheduler-per-process serving reality.
        m.gauge(
            "service.queue.depth", "Jobs queued but not yet running."
        ).set_function(self._queue.qsize)
        m.gauge(
            "service.inflight", "Jobs queued or running (dedup map size)."
        ).set_function(lambda: len(self._inflight))
        m.gauge(
            "service.workers", "Worker threads serving the job queue."
        ).set_function(lambda: len(self._workers))
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-svc-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: DistanceMatrix,
        method: str = "compact",
        options: Optional[dict] = None,
        *,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        verify: bool = False,
    ) -> Job:
        """Queue one construction; returns a :class:`Job` handle.

        Raises :class:`SchedulerClosed` after shutdown began and
        :class:`QueueFull` when the bounded queue is saturated.  A
        submission identical (same cache key *and* same ``verify``
        flag) to a queued or running job returns that job -- note the
        shared job keeps the *first* submission's deadline and the first
        submission's ``trace_id`` (the events it causes can only carry
        one id).  ``verify`` does not change the cache key (the solved
        payload is identical either way); it only asks the worker to run
        the result oracles on whatever the cache or engine produced.
        """
        options = dict(options or {})
        key = cache_key(matrix, method, options)
        if timeout is None:
            timeout = self.default_timeout
        with self._lock:
            if self._closed:
                raise SchedulerClosed()
            existing = self._inflight.get((key, verify))
            if existing is not None and not existing.done:
                self._stats["deduped"] += 1
                self.recorder.counter("queue.deduped", key=key[:12])
                self._m_deduped.inc()
                return existing
            job = Job(
                f"job-{self._next_job}", key, matrix, method, options,
                timeout, trace_id, verify,
            )
            self._next_job += 1
            try:
                self._queue.put_nowait(job)
            except _queue.Full:
                self._stats["rejected"] += 1
                self.recorder.counter("queue.rejected", key=key[:12])
                self._m_rejected.inc()
                raise QueueFull(self.queue_size) from None
            self._stats["submitted"] += 1
            self._jobs[job.id] = job
            self._inflight[(key, verify)] = job
        return job

    def solve(
        self,
        matrix: DistanceMatrix,
        method: str = "compact",
        options: Optional[dict] = None,
        *,
        timeout: Optional[float] = None,
    ) -> dict:
        """Submit and block for the payload (convenience wrapper)."""
        return self.submit(matrix, method, options).result(timeout)

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id (``None`` when unknown or pruned)."""
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            try:
                self._execute(item)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        rec = self.recorder
        if self._abandon:
            job._finish(
                JobState.CANCELLED, error="scheduler shut down before start"
            )
            self._settle(job, "cancelled")
            return
        if job._expired():
            job._finish(
                JobState.TIMEOUT,
                error=f"deadline of {job.timeout:g}s passed while queued",
            )
            self._settle(job, "timed_out")
            return
        if not job._mark_running():
            # Cancelled (or otherwise finished) while queued.
            self._settle(job, "cancelled")
            return
        cache_status = "error"
        t0 = time.perf_counter()
        try:
            with trace_context(job.trace_id), rec.span(
                "service.job",
                job=job.id,
                method=job.method,
                n=job.matrix.n,
                key=job.key[:12],
            ):
                payload = self.cache.get(job.key)
                if payload is not None:
                    cache_status = "hit"
                    rec.counter("cache.hit", key=job.key[:12])
                    self._m_cache_hit.inc()
                else:
                    cache_status = "miss"
                    rec.counter("cache.miss", key=job.key[:12])
                    self._m_cache_miss.inc()
                    payload = self._runner(
                        job.matrix, job.method, job.options, rec
                    )
                    self.cache.put(job.key, payload)
                if job.verify:
                    job.verification = self._verify_payload(job, payload)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            rec.counter("job.failed", job=job.id)
            self._observe_job(job, "error", t0)
            job._finish(
                JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
            )
            self._settle(job, "failed")
            return
        self._observe_job(job, cache_status, t0)
        if job._expired():
            # The result is cached for future callers, but this caller's
            # deadline has passed; report the timeout honestly.
            job._finish(
                JobState.TIMEOUT,
                error=f"deadline of {job.timeout:g}s passed while running",
                cache_status=cache_status,
            )
            self._settle(job, "timed_out")
            return
        job._finish(JobState.DONE, payload=payload, cache_status=cache_status)
        self._settle(job, "completed")

    def _verify_payload(self, job: Job, payload: dict) -> dict:
        """Run the result oracles on a solved (or cached) payload.

        The tree is reconstructed from the payload's Newick string --
        deliberately: the oracles then cover exactly what a client
        receives, including cache corruption and serialization drift.
        Each oracle runs inside a ``verify.oracle`` span on the shared
        recorder and every violation bumps the
        ``verify.violations{oracle}`` metric.  Verification never fails
        the job; the findings ride along in the job record.
        """
        from repro.tree.newick import parse_newick
        from repro.verify.oracles import ORACLE_NAMES, run_oracles

        if job.method == "nj":
            return {
                "skipped": "nj trees are additive; the ultrametric "
                           "oracles do not apply",
            }
        tree = parse_newick(payload["newick"])
        violations = run_oracles(
            tree,
            job.matrix,
            reported_cost=payload.get("cost"),
            method=job.method,
            recorder=self.recorder,
            metrics=self.metrics,
        )
        return {
            "ok": not violations,
            "oracles": list(ORACLE_NAMES),
            "violations": [v.to_json() for v in violations],
        }

    def _observe_job(self, job: Job, cache_status: str, t0: float) -> None:
        self._m_job_seconds.observe(
            time.perf_counter() - t0, method=job.method, cache=cache_status
        )

    def _settle(self, job: Job, stat: str) -> None:
        """Post-terminal bookkeeping: statistics, dedup map, retention."""
        self._m_jobs.inc(state=stat)
        with self._lock:
            self._stats[stat] += 1
            if self._inflight.get((job.key, job.verify)) is job:
                del self._inflight[(job.key, job.verify)]
            self._finished_order.append(job.id)
            while len(self._finished_order) > self._max_jobs_retained:
                stale = self._finished_order.pop(0)
                self._jobs.pop(stale, None)

    # ------------------------------------------------------------------
    # introspection and shutdown
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot for the ``/stats`` endpoint."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot.update(
                workers=len(self._workers),
                queue_size=self.queue_size,
                queue_depth=self._queue.qsize(),
                inflight=len(self._inflight),
                closed=self._closed,
            )
        snapshot["cache"] = self.cache.stats()
        snapshot["metrics"] = self.metrics.snapshot()
        return snapshot

    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the scheduler; returns whether every worker exited.

        ``drain=True`` (the default) finishes all queued and running
        jobs first.  ``drain=False`` cancels jobs that have not started;
        the currently running ones still run to completion (threads
        cannot be killed safely).  ``timeout`` bounds the join of each
        worker thread.  Idempotent.
        """
        with self._lock:
            first_call = not self._closed
            self._closed = True
        if first_call:
            if not drain:
                self._abandon = True
                with self._lock:
                    pending = [
                        job for job in self._jobs.values()
                        if job.state == JobState.PENDING
                    ]
                for job in pending:
                    job.cancel()
            for _ in self._workers:
                self._queue.put(_STOP)
        clean = True
        for thread in self._workers:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        return clean

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)
