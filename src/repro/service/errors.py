"""Typed errors for the serving layer.

Every failure mode a caller can act on has its own exception class, so
the scheduler, the HTTP front end and the Python client can agree on
semantics without string matching.  Each class carries a stable ``code``
that is also the wire format: the server sends ``{"error": <code>}`` and
the client raises the matching class back.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "QueueFull",
    "SchedulerClosed",
    "JobNotFound",
    "JobTimeout",
    "BadRequest",
    "PayloadTooLarge",
    "UnprocessableInput",
]


class ServiceError(RuntimeError):
    """Base class for every serving-layer failure."""

    #: Stable machine-readable identifier (also the JSON ``error`` field).
    code = "service_error"
    #: HTTP status the front end maps this error to.
    http_status = 500


class QueueFull(ServiceError):
    """Admission control rejected the job: the bounded queue is saturated.

    Raised by :meth:`Scheduler.submit` instead of blocking, so callers
    under load shed work instead of piling up.  The HTTP front end maps
    it to ``429 Too Many Requests``.
    """

    code = "queue_full"
    http_status = 429

    def __init__(self, queue_size: "int | None" = None) -> None:
        detail = f" ({queue_size} pending)" if queue_size is not None else ""
        super().__init__(f"job queue is full{detail}; retry later")
        self.queue_size = queue_size


class SchedulerClosed(ServiceError):
    """The scheduler is draining or stopped and accepts no new jobs."""

    code = "scheduler_closed"
    http_status = 503

    def __init__(self) -> None:
        super().__init__("scheduler is shut down; no new jobs accepted")


class JobNotFound(ServiceError):
    """No job with the requested id exists."""

    code = "job_not_found"
    http_status = 404

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no such job: {job_id}")
        self.job_id = job_id


class JobTimeout(ServiceError):
    """A job exceeded its deadline (while queued, or waiting on a result)."""

    code = "job_timeout"
    http_status = 504

    def __init__(self, job_id: str, timeout: float) -> None:
        super().__init__(f"job {job_id} exceeded its {timeout:g}s deadline")
        self.job_id = job_id
        self.timeout = timeout


class BadRequest(ServiceError):
    """The request payload could not be turned into a solve job."""

    code = "bad_request"
    http_status = 400


class PayloadTooLarge(ServiceError):
    """The request body exceeds the upload cap (``413``)."""

    code = "payload_too_large"
    http_status = 413

    def __init__(self, limit_bytes: int, actual_bytes: "int | None" = None):
        detail = f" (got {actual_bytes})" if actual_bytes is not None else ""
        super().__init__(
            f"request body exceeds {limit_bytes} bytes{detail}"
        )
        self.limit_bytes = limit_bytes
        self.actual_bytes = actual_bytes


class UnprocessableInput(ServiceError):
    """The upload parsed as a request but failed ingestion QC (``422``).

    Carries the pipeline's structured rejection records and the failure
    manifest in ``extra``, which the HTTP front end merges into the
    error body -- so a rejected upload is diagnosable from the response
    alone (which stage, which record, which code), not just "422".
    """

    code = "unprocessable_input"
    http_status = 422

    def __init__(self, detail: str, *, extra: "dict | None" = None) -> None:
        super().__init__(detail)
        self.extra = extra or {}
