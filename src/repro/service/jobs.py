"""Job objects: the unit of work the scheduler queues and tracks.

A :class:`Job` is a future-like handle for one tree construction.  Its
lifecycle::

    PENDING --> RUNNING --> DONE
        |           |-----> FAILED
        |           '-----> TIMEOUT   (deadline passed)
        '---------> CANCELLED          (cancelled while still queued)
        '---------> TIMEOUT            (deadline passed while queued)

State changes happen only under the job's lock (the scheduler drives
them); callers block on :meth:`wait`/:meth:`result` or poll
:meth:`to_json` for the wire representation.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.matrix.distance_matrix import DistanceMatrix
from repro.service.errors import JobTimeout, ServiceError

__all__ = ["JobState", "Job"]


class JobState:
    """String constants for the job lifecycle (also the wire values)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    #: States from which the job can never move again.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})


class Job:
    """One queued/running/finished solve request.

    Not constructed directly -- :meth:`Scheduler.submit` creates jobs.
    Deduplicated submissions share a single ``Job`` instance, so any
    number of callers may :meth:`wait` on it concurrently.
    """

    def __init__(
        self,
        job_id: str,
        key: str,
        matrix: DistanceMatrix,
        method: str,
        options: Dict[str, object],
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        verify: bool = False,
    ) -> None:
        self.id = job_id
        self.key = key
        self.matrix = matrix
        self.method = method
        self.options = options
        self.timeout = timeout
        self.trace_id = trace_id
        self.verify = verify
        self.state = JobState.PENDING
        self.payload: Optional[dict] = None
        self.error: Optional[str] = None
        self.cache_status: Optional[str] = None  # "hit" | "miss" once run
        #: Oracle outcome when the job ran with ``verify``; see
        #: ``Scheduler._verify_payload`` for the shape.
        self.verification: Optional[dict] = None
        #: Ingestion manifest (``repro.ingest.Manifest.to_json()``) for
        #: jobs scheduled through ``POST /ingest``; ``None`` for plain
        #: ``/solve`` jobs.  Attached by the HTTP front end right after
        #: submission, exposed verbatim in :meth:`to_json`.
        self.manifest: Optional[dict] = None
        #: Latest solver progress snapshot (``repro.obs.progress``
        #: shape), re-based onto this process's clock; ``None`` until the
        #: solver's first heartbeat.  Written by the scheduler, read by
        #: ``GET /jobs/<id>/progress``; plain attribute assignment of an
        #: immutable-once-published dict, so no lock is needed.
        self.progress: Optional[dict] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._finished = threading.Event()
        #: Scheduler-side bookkeeping: set (under the scheduler's lock)
        #: once statistics/dedup cleanup ran, making ``_settle``
        #: idempotent however many code paths observe the terminal state.
        self._settled = False

    # ------------------------------------------------------------------
    # caller side
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._finished.is_set()

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.submitted_at + self.timeout

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or ``timeout``
        seconds pass).  Returns whether the job finished.

        Deadline-aware: a job whose deadline passes while it is *still
        queued* is settled as ``TIMEOUT`` right here, at the deadline --
        not whenever a worker eventually dequeues it.  A 1s-timeout job
        stuck behind a long solve therefore reports its timeout after
        ~1s, and :meth:`result` raises the matching
        :class:`~repro.service.errors.ServiceError` promptly.
        """
        target = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            remaining = (
                None if target is None else target - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return self._finished.is_set()
            deadline = self.deadline
            if deadline is None or self.state != JobState.PENDING:
                # No deadline to watch (or already running: the worker
                # owns deadline enforcement from here).
                return self._finished.wait(remaining)
            to_deadline = deadline - time.time()
            if to_deadline <= 0:
                if self.expire_if_queued() or self._finished.is_set():
                    return True
                continue  # raced into RUNNING; re-enter the loop
            chunk = (
                to_deadline if remaining is None
                else min(remaining, to_deadline)
            )
            if self._finished.wait(chunk):
                return True

    def result(self, timeout: Optional[float] = None) -> dict:
        """The payload dict, blocking up to ``timeout`` seconds.

        Raises :class:`JobTimeout` if the wait expires, or a
        :class:`ServiceError` describing the failure for jobs that ended
        in ``failed``/``cancelled``/``timeout`` state.
        """
        if not self.wait(timeout):
            raise JobTimeout(self.id, timeout if timeout is not None else 0.0)
        if self.state == JobState.DONE:
            assert self.payload is not None
            return self.payload
        raise ServiceError(
            f"job {self.id} ended in state {self.state!r}: {self.error}"
        )

    def cancel(self) -> bool:
        """Cancel the job if it is still queued.  Running jobs are not
        interrupted (pure-Python workers cannot be killed safely);
        returns whether the cancellation took effect."""
        return self._finish(JobState.CANCELLED, error="cancelled by caller")

    def expire_if_queued(self, now: Optional[float] = None) -> bool:
        """Settle a still-queued job as ``TIMEOUT`` once its deadline
        passed.  Called by :meth:`wait` and by ``GET /jobs/<id>`` so a
        queued job's timeout is visible the moment it is due; a no-op
        (returning ``False``) for running/finished jobs and jobs whose
        deadline has not passed.  The scheduler reconciles its statistics
        when the job is eventually dequeued."""
        deadline = self.deadline
        if deadline is None:
            return False
        with self._lock:
            if self.state != JobState.PENDING:
                return False
            if (time.time() if now is None else now) <= deadline:
                return False
            finished = self._finish_locked(
                JobState.TIMEOUT,
                error=f"deadline of {self.timeout:g}s passed while queued",
            )
        if finished:
            self._finished.set()
        return finished

    # ------------------------------------------------------------------
    # scheduler side
    # ------------------------------------------------------------------
    def _mark_running(self) -> bool:
        """PENDING -> RUNNING; False if the job already left PENDING."""
        with self._lock:
            if self.state != JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            self.started_at = time.time()
            return True

    def _finish_locked(
        self,
        state: str,
        *,
        payload: Optional[dict] = None,
        error: Optional[str] = None,
        cache_status: Optional[str] = None,
    ) -> bool:
        """Terminal transition; the caller holds ``self._lock`` and must
        set ``self._finished`` when this returns True."""
        assert state in JobState.TERMINAL
        if self.state in JobState.TERMINAL:
            return False
        self.state = state
        self.payload = payload
        self.error = error
        if cache_status is not None:
            self.cache_status = cache_status
        self.finished_at = time.time()
        return True

    def _finish(
        self,
        state: str,
        *,
        payload: Optional[dict] = None,
        error: Optional[str] = None,
        cache_status: Optional[str] = None,
    ) -> bool:
        """Move to a terminal state exactly once; later calls are no-ops."""
        with self._lock:
            finished = self._finish_locked(
                state, payload=payload, error=error,
                cache_status=cache_status,
            )
        if finished:
            self._finished.set()
        return finished

    def _expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline
        if deadline is None:
            return False
        return (time.time() if now is None else now) > deadline

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Wire representation served by ``GET /jobs/<id>``."""
        record: dict = {
            "id": self.id,
            "state": self.state,
            "key": self.key,
            "method": self.method,
            "n_species": self.matrix.n,
            "cache": self.cache_status,
            "trace_id": self.trace_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.payload is not None:
            record["result"] = self.payload
        if self.error is not None:
            record["error"] = self.error
        if self.verification is not None:
            record["verification"] = self.verification
        if self.manifest is not None:
            record["manifest"] = self.manifest
        return record

    def progress_json(self) -> dict:
        """Wire representation served by ``GET /jobs/<id>/progress``.

        Deliberately small -- state, trace id and the latest snapshot --
        so a watcher can poll it at a high rate without paying for the
        full job record (result payloads can be large).
        """
        return {
            "id": self.id,
            "state": self.state,
            "trace_id": self.trace_id,
            "progress": self.progress,
        }
