"""Interoperability with the scientific-Python ecosystem.

Currently: conversions between :class:`~repro.tree.ultrametric.UltrametricTree`
and ``scipy.cluster.hierarchy`` linkage matrices, so trees built here can
be drawn with scipy/matplotlib dendrograms and scipy clusterings can be
validated with this repository's feasibility checks.
"""

from repro.interop.scipy_hierarchy import (
    tree_to_linkage,
    linkage_to_tree,
)
from repro.interop.networkx_graph import (
    matrix_to_graph,
    mst_graph,
    tree_to_digraph,
)

__all__ = [
    "tree_to_linkage",
    "linkage_to_tree",
    "matrix_to_graph",
    "mst_graph",
    "tree_to_digraph",
]
