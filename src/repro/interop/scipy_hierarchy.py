"""Conversions between ultrametric trees and scipy linkage matrices.

A scipy *linkage matrix* ``Z`` has one row per merge:
``[cluster_a, cluster_b, distance, size]`` where clusters ``0..n-1`` are
the leaves and row ``i`` creates cluster ``n + i``.  A scipy merge
*distance* is the cophenetic distance between the merged clusters, which
for an ultrametric tree is twice the merge node's height -- that factor
of two is the whole conversion.

These converters let trees built here feed
``scipy.cluster.hierarchy.dendrogram`` / ``cophenet`` directly, and let
scipy clusterings (e.g. ``linkage(..., method="complete")``) be checked
with this repository's feasibility predicates.  The test suite uses the
round trip as an independent oracle for UPGMA/UPGMM.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["tree_to_linkage", "linkage_to_tree"]


def tree_to_linkage(tree: UltrametricTree) -> Tuple[np.ndarray, List[str]]:
    """Convert a binary ultrametric tree to ``(Z, labels)``.

    ``labels[i]`` names scipy leaf cluster ``i``; ``Z`` is a valid
    ``(n - 1, 4)`` linkage matrix with merge distances equal to the
    cophenetic distances of the tree (``2 * height``).  Raises
    ``ValueError`` for non-binary trees (scipy merges are pairwise).
    """
    labels = tree.leaf_labels
    n = len(labels)
    if n < 2:
        raise ValueError("linkage requires at least two leaves")
    index = {label: i for i, label in enumerate(labels)}
    rows: List[List[float]] = []
    next_cluster = n

    def visit(node: TreeNode) -> Tuple[int, int]:
        """Post-order: returns (cluster id, cluster size)."""
        nonlocal next_cluster
        if node.is_leaf:
            return index[node.label], 1  # type: ignore[index]
        if len(node.children) != 2:
            raise ValueError("scipy linkage requires a binary tree")
        (id_a, size_a) = visit(node.children[0])
        (id_b, size_b) = visit(node.children[1])
        rows.append(
            [float(min(id_a, id_b)), float(max(id_a, id_b)),
             2.0 * node.height, float(size_a + size_b)]
        )
        cluster = next_cluster
        next_cluster += 1
        return cluster, size_a + size_b

    visit(tree.root)
    return np.asarray(rows, dtype=float), labels


def linkage_to_tree(
    linkage: np.ndarray, labels: Optional[Sequence[str]] = None
) -> UltrametricTree:
    """Convert a scipy linkage matrix into an :class:`UltrametricTree`.

    Merge heights become node heights (``distance / 2``); non-monotone
    linkages (possible with e.g. centroid linkage) are rejected because
    they do not describe an ultrametric tree.
    """
    z = np.asarray(linkage, dtype=float)
    if z.ndim != 2 or z.shape[1] != 4:
        raise ValueError(f"linkage must be (n-1, 4), got {z.shape}")
    n = z.shape[0] + 1
    if labels is None:
        labels = [f"s{i}" for i in range(n)]
    labels = list(labels)
    if len(labels) != n:
        raise ValueError(f"{len(labels)} labels for a {n}-leaf linkage")

    nodes: List[TreeNode] = [TreeNode(0.0, label=label) for label in labels]
    for row_index, (a, b, distance, size) in enumerate(z):
        ia, ib = int(a), int(b)
        limit = n + row_index
        if not (0 <= ia < limit and 0 <= ib < limit) or ia == ib:
            raise ValueError(f"linkage row {row_index} references bad clusters")
        height = distance / 2.0
        left, right = nodes[ia], nodes[ib]
        if height < left.height - 1e-9 or height < right.height - 1e-9:
            raise ValueError(
                f"linkage row {row_index} is non-monotone "
                f"(distance {distance} below a child merge)"
            )
        if int(size) != len(left.leaves()) + len(right.leaves()):
            raise ValueError(f"linkage row {row_index} has a wrong size field")
        nodes.append(TreeNode(max(height, left.height, right.height),
                              [left, right]))
    return UltrametricTree(nodes[-1])
