"""Conversions to/from networkx.

The distance matrix is "a complete, weighted, undirected graph" (PaCT
Section 2); these helpers materialise that view for users who want to
run graph algorithms or draw the structures with networkx:

* :func:`matrix_to_graph` -- the complete weighted graph of a matrix;
* :func:`mst_graph` -- the matrix's MST as a networkx graph (the test
  suite uses ``networkx.minimum_spanning_tree`` as an independent
  oracle for our Kruskal);
* :func:`tree_to_digraph` -- an ultrametric tree as a rooted DiGraph
  with ``height``/``label`` node attributes and ``weight`` edges.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.graph.mst import kruskal_mst
from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["matrix_to_graph", "mst_graph", "tree_to_digraph"]


def matrix_to_graph(matrix: DistanceMatrix) -> nx.Graph:
    """The complete weighted graph of ``matrix`` (nodes = labels)."""
    graph = nx.Graph()
    labels = matrix.labels
    graph.add_nodes_from(labels)
    for i, j, weight in matrix.pairs():
        graph.add_edge(labels[i], labels[j], weight=weight)
    return graph


def mst_graph(matrix: DistanceMatrix) -> nx.Graph:
    """The Kruskal MST of ``matrix`` as a networkx graph."""
    graph = nx.Graph()
    labels = matrix.labels
    graph.add_nodes_from(labels)
    for i, j, weight in kruskal_mst(matrix):
        graph.add_edge(labels[i], labels[j], weight=weight)
    return graph


def tree_to_digraph(tree: UltrametricTree) -> Tuple[nx.DiGraph, str]:
    """An ultrametric tree as a rooted DiGraph.

    Returns ``(digraph, root_id)``.  Leaf nodes are named by their
    labels; internal nodes get synthetic ids ``"node<k>"``.  Every node
    carries a ``height`` attribute (leaves 0), leaves additionally a
    ``label``, and each edge a ``weight`` equal to the branch length.
    """
    graph = nx.DiGraph()
    counter = 0

    def visit(node: TreeNode) -> str:
        nonlocal counter
        if node.is_leaf:
            name = node.label or f"leaf{counter}"
            graph.add_node(name, height=0.0, label=node.label)
            return name
        name = f"node{counter}"
        counter += 1
        graph.add_node(name, height=node.height)
        for child in node.children:
            child_name = visit(child)
            graph.add_edge(
                name, child_name, weight=node.height - child.height
            )
        return name

    root = visit(tree.root)
    return graph, root
