"""Graph substrate: union-find, minimum spanning trees, compact sets.

The PaCT 2005 decomposition views the distance matrix as a complete
weighted graph, extracts a minimum spanning tree (Kruskal), and scans the
MST edges in ascending order to enumerate all *compact sets* -- subsets
whose largest internal distance is smaller than every distance leaving the
subset (Lemma 2).  Compact sets form a laminar family (Lemma 3), captured
here as a :class:`~repro.graph.hierarchy.CompactSetHierarchy`.
"""

from repro.graph.union_find import UnionFind
from repro.graph.mst import kruskal_mst, prim_mst, mst_is_unique
from repro.graph.compact_sets import (
    find_compact_sets,
    is_compact,
    compact_sets_brute_force,
)
from repro.graph.compact_linear import find_compact_sets_fast
from repro.graph.hierarchy import CompactSetHierarchy, HierarchyNode

__all__ = [
    "UnionFind",
    "kruskal_mst",
    "prim_mst",
    "mst_is_unique",
    "find_compact_sets",
    "find_compact_sets_fast",
    "is_compact",
    "compact_sets_brute_force",
    "CompactSetHierarchy",
    "HierarchyNode",
]
