"""Disjoint-set union with path compression and union by size.

Used by Kruskal's algorithm and by the compact-set scan, both of which
merge vertex groups edge by edge.  The structure additionally tracks the
member list of every root so the compact-set algorithm can inspect the
current group of a vertex in ``O(|group|)`` without a full sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set forest over ``range(n)``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n
        self._members: Dict[int, List[int]] = {i: [i] for i in range(n)}
        self._count = n

    @property
    def count(self) -> int:
        """Number of disjoint groups currently alive."""
        return self._count

    def find(self, x: int) -> int:
        """Root of ``x``'s group, with path compression."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the groups of ``a`` and ``b``.

        Returns ``True`` when a merge happened, ``False`` when the two
        vertices were already together (the signal Kruskal uses to skip a
        cycle-forming edge).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._members[ra].extend(self._members.pop(rb))
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Are ``a`` and ``b`` in the same group?"""
        return self.find(a) == self.find(b)

    def group(self, x: int) -> List[int]:
        """The members of ``x``'s group (a copy, safe to mutate)."""
        return list(self._members[self.find(x)])

    def groups(self) -> Iterable[List[int]]:
        """All current groups as member lists."""
        return [list(members) for members in self._members.values()]

    def group_size(self, x: int) -> int:
        """Size of ``x``'s group."""
        return self._size[self.find(x)]
