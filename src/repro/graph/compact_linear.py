"""An O(n^2) compact-set algorithm (after Liang 1993 / Dekel-Hu-Ouyang).

The paper cites Liang's "An O(n^2) Algorithm for Finding the Compact
Sets of a Graph" as the efficient alternative to re-scanning the whole
matrix at every Kruskal merge (which costs O(n^3) overall).  The two
observations that make O(n^2) possible on a complete graph:

* **Min side.** By the cut property, the lightest edge leaving any
  vertex group is an MST edge, so ``Min(A, !A)`` is just the lightest
  *unprocessed MST edge* incident to the group -- maintainable with one
  lazily-deleted heap per group, merged small-into-large.
* **Max side.** ``Max(A u B) = max(Max(A), Max(B), max cross(A, B))``;
  summing ``|A| * |B|`` over all Kruskal merges counts every vertex pair
  exactly once, so maintaining the internal maximum costs ``O(n^2)``
  in total.

The result is exactly the set family of
:func:`repro.graph.compact_sets.find_compact_sets` (tested), at a cost
dominated by the O(n^2) MST construction itself.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List

from repro.graph.mst import kruskal_mst
from repro.graph.union_find import UnionFind
from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["find_compact_sets_fast"]


def find_compact_sets_fast(
    matrix: DistanceMatrix,
    *,
    include_singletons: bool = False,
    include_universe: bool = False,
) -> List[FrozenSet[int]]:
    """All compact sets of ``matrix`` in O(n^2) after the MST.

    Drop-in replacement for
    :func:`repro.graph.compact_sets.find_compact_sets`; results are
    returned in the same discovery order.
    """
    n = matrix.n
    values = matrix.values
    found: List[FrozenSet[int]] = []
    if include_singletons:
        found.extend(frozenset({i}) for i in range(n))

    if n >= 2:
        tree = kruskal_mst(matrix)
        uf = UnionFind(n)
        # Per-group state, keyed by union-find root:
        #   heaps of (weight, edge_index) for incident MST edges not yet
        #   processed; the running internal maximum distance.
        heaps: Dict[int, List] = {i: [] for i in range(n)}
        max_internal: Dict[int, float] = {i: 0.0 for i in range(n)}
        processed = [False] * len(tree)
        for index, (i, j, w) in enumerate(tree):
            heapq.heappush(heaps[i], (w, index))
            heapq.heappush(heaps[j], (w, index))

        for index, (i, j, w) in enumerate(tree):
            root_a, root_b = uf.find(i), uf.find(j)
            members_a = uf.group(i)
            members_b = uf.group(j)
            # Cross maximum: each vertex pair is examined at exactly one
            # merge, giving the O(n^2) total.
            cross = max(
                float(values[a, b]) for a in members_a for b in members_b
            )
            merged_max = max(max_internal[root_a], max_internal[root_b], cross)
            processed[index] = True
            uf.union(i, j)
            root = uf.find(i)
            other = root_b if root == root_a else root_a
            small, large = heaps[other], heaps[root]
            if len(small) > len(large):
                small, large = large, small
            for item in small:
                heapq.heappush(large, item)
            heaps[root] = large
            heaps.pop(other, None)
            max_internal[root] = merged_max
            max_internal.pop(other, None)

            group_size = uf.group_size(i)
            if group_size == n:
                break
            # Lightest unprocessed MST edge incident to the group ==
            # Min(A, !A) by the cut property.
            heap = heaps[root]
            while heap and processed[heap[0][1]]:
                heapq.heappop(heap)
            if not heap:  # pragma: no cover - only the final merge
                continue
            if merged_max < heap[0][0]:
                found.append(frozenset(uf.group(i)))

    if include_universe and n >= 1:
        universe = frozenset(range(n))
        if universe not in found:
            found.append(universe)
    return found
