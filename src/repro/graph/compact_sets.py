"""Compact sets of a distance graph (PaCT 2005, Section 3.1).

A subset ``C`` of the vertex set is *compact* (Lemma 2) when its largest
internal distance is strictly smaller than every distance between ``C``
and the rest of the graph::

    max{ M[i, j] : i, j in C }  <  min{ M[i, j] : i in C, j not in C }

The paper's Algorithm *Compact Sets* discovers all of them with a single
Kruskal scan: process MST edges in ascending order, merge the endpoint
groups, and test the merged group against Lemma 2.  Every compact set
appears as one of the scanned groups because its internal MST edges are
all lighter than its outgoing edges (Lemma 4), so Kruskal finishes the set
before leaving it.

A brute-force enumerator over all subsets is included for property tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence

import numpy as np

from repro.graph.mst import kruskal_mst
from repro.graph.union_find import UnionFind
from repro.matrix.distance_matrix import DistanceMatrix

__all__ = [
    "is_compact",
    "find_compact_sets",
    "compact_sets_brute_force",
    "max_internal_distance",
    "min_outgoing_distance",
]


def max_internal_distance(matrix: DistanceMatrix, subset: Sequence[int]) -> float:
    """``Max(A)`` of the paper: the largest distance within ``subset``.

    Returns ``0.0`` for singletons (no internal pair), matching the
    convention that singletons are vacuously compact.
    """
    idx = np.fromiter(subset, dtype=int)
    if idx.size < 2:
        return 0.0
    block = matrix.values[np.ix_(idx, idx)]
    return float(block.max())


def min_outgoing_distance(matrix: DistanceMatrix, subset: Sequence[int]) -> float:
    """``Min(A, !A)`` of the paper: the smallest distance leaving ``subset``.

    Returns ``+inf`` when the subset is the whole vertex set.
    """
    idx = np.fromiter(subset, dtype=int)
    outside = np.setdiff1d(np.arange(matrix.n), idx, assume_unique=False)
    if outside.size == 0:
        return float("inf")
    block = matrix.values[np.ix_(idx, outside)]
    return float(block.min())


def is_compact(matrix: DistanceMatrix, subset: Sequence[int]) -> bool:
    """Direct Lemma-2 test: ``Max(A) < Min(A, !A)``.

    The whole vertex set and singletons are compact by convention
    (``Min = +inf`` and ``Max = 0`` respectively).
    """
    members = set(subset)
    if not members:
        return False
    if any(not 0 <= m < matrix.n for m in members):
        raise ValueError("subset contains out-of-range vertices")
    return max_internal_distance(matrix, sorted(members)) < min_outgoing_distance(
        matrix, sorted(members)
    )


def find_compact_sets(
    matrix: DistanceMatrix,
    *,
    include_singletons: bool = False,
    include_universe: bool = False,
) -> List[FrozenSet[int]]:
    """All compact sets of ``matrix`` via the paper's MST scan.

    Follows Algorithm *Compact Sets* literally: Kruskal MST, edges in
    ascending order, union the endpoint groups, and emit the merged group
    whenever ``Max(A) < Min(A, !A)``.  Results are returned in discovery
    order (non-decreasing diameter), which for the paper's Figure 3
    example yields ``{1,3}, {4,6}, {1,2,3}, {1,2,3,5}``.

    ``include_singletons`` / ``include_universe`` append the trivially
    compact sets, which the decomposition hierarchy needs but the paper's
    listing omits.
    """
    n = matrix.n
    found: List[FrozenSet[int]] = []
    if include_singletons:
        found.extend(frozenset({i}) for i in range(n))
    if n >= 2:
        uf = UnionFind(n)
        for i, j, _ in kruskal_mst(matrix):
            uf.union(i, j)
            group = uf.group(i)
            if len(group) == n:
                break  # the universe is handled below
            if max_internal_distance(matrix, group) < min_outgoing_distance(
                matrix, group
            ):
                found.append(frozenset(group))
    if include_universe and n >= 1:
        universe = frozenset(range(n))
        if universe not in found:
            found.append(universe)
    return found


def compact_sets_brute_force(
    matrix: DistanceMatrix,
    *,
    include_singletons: bool = False,
    include_universe: bool = False,
) -> List[FrozenSet[int]]:
    """Enumerate compact sets by checking every subset (test oracle).

    Exponential; intended for ``n <= 14`` in property tests that confirm
    the MST scan finds exactly the compact sets.
    """
    n = matrix.n
    found: List[FrozenSet[int]] = []
    vertices = range(n)
    low = 1 if include_singletons else 2
    high = n if include_universe else n - 1
    for size in range(low, high + 1):
        for subset in combinations(vertices, size):
            if is_compact(matrix, subset):
                found.append(frozenset(subset))
    return found


def laminar_violations(sets: Iterable[FrozenSet[int]]) -> List[tuple]:
    """Pairs of sets that properly cross (Lemma 3 says there are none).

    Exposed for tests: for any two compact sets ``A`` and ``B`` that
    intersect, one must contain the other.
    """
    sets = list(sets)
    bad = []
    for a, b in combinations(sets, 2):
        if a & b and not (a <= b or b <= a):
            bad.append((a, b))
    return bad
