"""Minimum spanning trees of the complete distance graph.

Step 1 of the paper's Algorithm *Compact Sets* finds an MST of the graph
the distance matrix describes ("here we use Kruskal's algorithm").  We
provide Kruskal (the paper's choice) and Prim (as a cross-check used in
tests), plus the uniqueness probe the paper discusses around Figure 7:
when an MST edge can be swapped for a non-tree edge of equal weight, more
than one MST exists and the compact-set scan order is ambiguous.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple


from repro.graph.union_find import UnionFind
from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["kruskal_mst", "prim_mst", "mst_weight", "mst_is_unique"]

Edge = Tuple[int, int, float]


def _sorted_edges(matrix: DistanceMatrix) -> List[Edge]:
    """All upper-triangle edges sorted by (weight, i, j) for determinism."""
    edges = [(w, i, j) for i, j, w in matrix.pairs()]
    edges.sort()
    return [(i, j, w) for w, i, j in edges]


def kruskal_mst(matrix: DistanceMatrix) -> List[Edge]:
    """Kruskal's MST of the complete graph of ``matrix``.

    Returns ``n - 1`` edges ``(i, j, weight)`` with ``i < j``, in the order
    Kruskal accepted them (non-decreasing weight) -- exactly the edge order
    the compact-set scan consumes.
    """
    n = matrix.n
    uf = UnionFind(n)
    tree: List[Edge] = []
    for i, j, w in _sorted_edges(matrix):
        if uf.union(i, j):
            tree.append((i, j, w))
            if len(tree) == n - 1:
                break
    return tree


def prim_mst(matrix: DistanceMatrix, start: int = 0) -> List[Edge]:
    """Prim's MST, used as an independent cross-check of Kruskal."""
    n = matrix.n
    if n == 0:
        return []
    values = matrix.values
    in_tree = [False] * n
    in_tree[start] = True
    heap: List[Tuple[float, int, int]] = []
    for j in range(n):
        if j != start:
            heapq.heappush(heap, (float(values[start, j]), start, j))
    tree: List[Edge] = []
    while heap and len(tree) < n - 1:
        w, i, j = heapq.heappop(heap)
        if in_tree[j]:
            continue
        in_tree[j] = True
        a, b = (i, j) if i < j else (j, i)
        tree.append((a, b, w))
        for k in range(n):
            if not in_tree[k]:
                heapq.heappush(heap, (float(values[j, k]), j, k))
    return tree


def mst_weight(tree: List[Edge]) -> float:
    """Total weight of an edge list."""
    return float(sum(w for _, _, w in tree))


def mst_is_unique(matrix: DistanceMatrix, tolerance: float = 1e-9) -> bool:
    """Is the MST of ``matrix`` unique?

    An MST is unique iff no non-tree edge ties (within ``tolerance``) the
    heaviest tree edge on the cycle it would close.  The paper (Figure 7)
    notes that when several MSTs coexist the replacement edge "should
    satisfy all conditions"; this probe lets callers detect that situation
    and, in tests, lets us assert the compact sets found do not depend on
    the tie-break.
    """
    tree = kruskal_mst(matrix)
    n = matrix.n
    adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    for i, j, w in tree:
        adjacency[i].append((j, w))
        adjacency[j].append((i, w))

    def max_edge_on_path(src: int, dst: int) -> float:
        # DFS on the n-1 edge tree; n is small everywhere we call this.
        stack = [(src, -1, 0.0)]
        while stack:
            node, parent, best = stack.pop()
            if node == dst:
                return best
            for nxt, w in adjacency[node]:
                if nxt != parent:
                    stack.append((nxt, node, max(best, w)))
        raise RuntimeError("tree is disconnected")  # pragma: no cover

    tree_set = {(i, j) for i, j, _ in tree}
    values = matrix.values
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) in tree_set:
                continue
            w = float(values[i, j])
            if abs(w - max_edge_on_path(i, j)) <= tolerance:
                return False
    return True
