"""The laminar hierarchy of compact sets.

Lemma 3 of the paper guarantees that compact sets never properly cross,
so together with the universe and the singletons they form a rooted tree:
the *compact-set hierarchy*.  Each internal node of the hierarchy induces
one small distance matrix over its children (Section 3.1 of the paper),
and the pipeline solves those matrices independently before merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Sequence

from repro.graph.compact_sets import find_compact_sets
from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["HierarchyNode", "CompactSetHierarchy"]


@dataclass
class HierarchyNode:
    """One node of the compact-set hierarchy.

    ``members`` is the vertex set the node covers; ``children`` partition
    it.  Leaves are singletons.
    """

    members: FrozenSet[int]
    children: List["HierarchyNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def arity(self) -> int:
        """Number of children = size of this node's reduced matrix."""
        return len(self.children)

    def walk(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"{self.arity} children"
        return f"HierarchyNode({sorted(self.members)}, {kind})"


class CompactSetHierarchy:
    """The laminar family of compact sets arranged as a tree.

    The root covers every vertex; every non-trivial compact set appears as
    an internal node; singletons are the leaves.  ``from_matrix`` builds
    the hierarchy with the paper's MST scan.
    """

    def __init__(self, root: HierarchyNode, n: int) -> None:
        self.root = root
        self.n = n

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls, matrix: DistanceMatrix, *, algorithm: str = "fast"
    ) -> "CompactSetHierarchy":
        """Build the hierarchy of all compact sets of ``matrix``.

        ``algorithm`` selects the discovery routine: ``"fast"`` (the
        O(n^2) method of :mod:`repro.graph.compact_linear`, default) or
        ``"scan"`` (the paper's literal re-scanning algorithm).  Both
        return the same family.
        """
        if algorithm == "fast":
            from repro.graph.compact_linear import find_compact_sets_fast

            sets = find_compact_sets_fast(matrix)
        elif algorithm == "scan":
            sets = find_compact_sets(matrix)
        else:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose 'fast' or 'scan'"
            )
        return cls.from_sets(sets, matrix.n)

    @classmethod
    def from_sets(
        cls, sets: Sequence[FrozenSet[int]], n: int
    ) -> "CompactSetHierarchy":
        """Arrange an arbitrary laminar family over ``range(n)`` as a tree.

        Raises ``ValueError`` if two sets properly cross (which Lemma 3
        rules out for genuine compact sets).
        """
        universe = frozenset(range(n))
        # Deduplicate; drop singletons and the universe, re-added below.
        unique = {s for s in sets if 1 < len(s) < n}
        ordered = sorted(unique, key=len, reverse=True)
        root = HierarchyNode(universe)
        for members in ordered:
            parent = cls._deepest_superset(root, members)
            for existing in parent.children:
                overlap = existing.members & members
                if overlap and not existing.members <= members:
                    raise ValueError(
                        f"sets {sorted(existing.members)} and {sorted(members)} "
                        "properly cross; not a laminar family"
                    )
            node = HierarchyNode(members)
            # Adopt any existing children that the new set swallows.
            swallowed = [c for c in parent.children if c.members <= members]
            for child in swallowed:
                parent.children.remove(child)
                node.children.append(child)
            parent.children.append(node)
        cls._attach_singletons(root)
        return cls(root, n)

    @staticmethod
    def _deepest_superset(root: HierarchyNode, members: FrozenSet[int]) -> HierarchyNode:
        node = root
        descended = True
        while descended:
            descended = False
            for child in node.children:
                if members <= child.members:
                    node = child
                    descended = True
                    break
        return node

    @staticmethod
    def _attach_singletons(root: HierarchyNode) -> None:
        for node in list(root.walk()):
            if node.size == 1:
                continue
            covered = frozenset().union(
                *[c.members for c in node.children]
            ) if node.children else frozenset()
            for vertex in sorted(node.members - covered):
                node.children.append(HierarchyNode(frozenset({vertex})))
            node.children.sort(key=lambda c: min(c.members))

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[HierarchyNode]:
        """All nodes in pre-order."""
        return self.root.walk()

    def internal_nodes(self) -> List[HierarchyNode]:
        """Nodes with children -- each one yields a reduced matrix."""
        return [node for node in self.nodes() if not node.is_leaf]

    def compact_sets(self) -> List[FrozenSet[int]]:
        """The non-trivial compact sets present in the hierarchy."""
        return [
            node.members
            for node in self.nodes()
            if 1 < node.size < self.n
        ]

    def max_subproblem_size(self) -> int:
        """The largest reduced-matrix size the decomposition produces.

        This is what bounds branch-and-bound effort after decomposition;
        the paper's speedups come from this number being far below ``n``.
        """
        arities = [node.arity for node in self.internal_nodes()]
        return max(arities) if arities else 1

    def depth(self) -> int:
        """Longest root-to-leaf path length (edges)."""

        def node_depth(node: HierarchyNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(c) for c in node.children)

        return node_depth(self.root)

    def __repr__(self) -> str:
        return (
            f"CompactSetHierarchy(n={self.n}, "
            f"compact_sets={len(self.compact_sets())}, "
            f"max_subproblem={self.max_subproblem_size()})"
        )
