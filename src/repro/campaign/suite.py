"""Suites: named, seeded specifications of many construction cases.

A **suite** is the declarative half of a campaign: which matrices, which
methods, which options.  Executing a suite (``runner.py``) produces a
**campaign** -- one recorded run of the suite under a concrete engine
fingerprint.  The split is what makes cross-version comparison work: the
suite spec is engine-independent and deterministic, so two engines given
the same spec solve the same cases under the same case ids, and
``repro-mut campaign diff`` can align their rows.

Case sources (the ``"cases"`` list of a spec):

``{"kind": "generated", "families": [...], "sizes": [...], "count": k}``
    ``k`` replicates per family x size from the fuzz generator families
    (:data:`repro.verify.fuzz.FAMILIES`).  Each replicate's RNG is
    seeded from ``(suite seed, crc32(family), size, replicate)``, so a
    case's matrix depends only on the spec -- never on how many other
    sources the suite has or the order families iterate.

``{"kind": "random", "sizes": [...], "seed": s}``
    ``repro.matrix.generators.random_metric_matrix(n, seed=s)`` -- the
    seeded workloads the regression pins and the HPCAsia benchmarks use.

``{"kind": "hierarchical", "spec": [...], "seed": s, "jitter": j}``
    One ``hierarchical_matrix`` workload (the PaCT figure matrices).

``{"kind": "hmdna", "species": [...], "seeds": [...]}``
    Simulated human-mitochondrial datasets
    (:func:`repro.sequences.hmdna.generate_hmdna_dataset`) -- the
    paper's 26/30/38-species experimental program.

``{"kind": "glob", "pattern": "dir/*.phy"}``
    On-disk PHYLIP matrices (fuzz corpus entries, user data).  Matches
    are sorted; the case id is the file name, so re-running after the
    engine changed aligns by file.

Every source case is crossed with the suite's ``methods``; the final
case id is ``<source-id>@<method>``.  Ids are checked for uniqueness at
materialisation time.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from glob import glob
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.api import METHODS
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import hierarchical_matrix, random_metric_matrix

__all__ = [
    "BUILTIN_SUITES",
    "Case",
    "Suite",
    "SuiteError",
    "load_suite",
]


class SuiteError(ValueError):
    """A malformed or unsatisfiable suite specification."""


@dataclass(frozen=True)
class Case:
    """One concrete unit of campaign work: a matrix under a method.

    ``id`` is stable across engine versions (derived from the spec, not
    from the matrix contents); ``family`` and ``source`` describe where
    the matrix came from for reporting and diff grouping.
    """

    id: str
    matrix: DistanceMatrix
    method: str
    options: Mapping[str, object]
    family: str
    source: str

    def cache_options(self) -> Dict[str, object]:
        return dict(self.options)


def _case_rng(seed: int, family: str, n: int, replicate: int):
    """Deterministic per-case RNG, independent of suite layout."""
    return np.random.default_rng(
        np.random.SeedSequence(
            [int(seed), zlib.crc32(family.encode("utf-8")), int(n), replicate]
        )
    )


def _sanitize(stem: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in stem)


@dataclass
class Suite:
    """A named, seeded case specification.

    Build one from a spec dict (:meth:`from_spec`), a JSON file or a
    builtin name (:func:`load_suite`).  ``cases()`` materialises the
    deterministic case list; ``spec()``/``spec_json()`` give back the
    canonical spec the run database stores (and resume validates
    against).
    """

    name: str
    seed: int = 0
    methods: Tuple[str, ...] = ("compact",)
    options: Dict[str, object] = field(default_factory=dict)
    sources: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.methods = tuple(self.methods)
        if not self.name:
            raise SuiteError("suite needs a non-empty name")
        if not self.methods:
            raise SuiteError("suite needs at least one method")
        unknown = [m for m in self.methods if m not in METHODS]
        if unknown:
            raise SuiteError(
                f"unknown methods {unknown}; choose from {METHODS}"
            )
        if not self.sources:
            raise SuiteError("suite needs at least one case source")

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "Suite":
        """Build a suite from a spec dict (the ``campaigns.md`` format)."""
        if not isinstance(spec, Mapping):
            raise SuiteError("suite spec must be a JSON object")
        extra = set(spec) - {"name", "seed", "methods", "options", "cases"}
        if extra:
            raise SuiteError(f"unknown suite spec keys: {sorted(extra)}")
        try:
            return cls(
                name=str(spec["name"]),
                seed=int(spec.get("seed", 0)),
                methods=tuple(spec.get("methods", ("compact",))),
                options=dict(spec.get("options", {}) or {}),
                sources=[dict(s) for s in spec.get("cases", ())],
            )
        except KeyError as exc:
            raise SuiteError(f"suite spec missing required key {exc}")
        except TypeError as exc:
            raise SuiteError(f"malformed suite spec: {exc}")

    def spec(self) -> Dict[str, object]:
        """The canonical spec dict (what the run database stores)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "methods": list(self.methods),
            "options": dict(self.options),
            "cases": [dict(s) for s in self.sources],
        }

    def spec_json(self) -> str:
        """Canonical JSON of :meth:`spec` (resume compares this)."""
        return json.dumps(self.spec(), sort_keys=True)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def cases(
        self, methods: Optional[Sequence[str]] = None
    ) -> List[Case]:
        """The deterministic case list: every source case x every method.

        ``methods`` overrides the suite's own method list (the CLI's
        ``--methods``); ids must come out unique or the suite is
        rejected.
        """
        chosen = tuple(methods) if methods else self.methods
        unknown = [m for m in chosen if m not in METHODS]
        if unknown:
            raise SuiteError(
                f"unknown methods {unknown}; choose from {METHODS}"
            )
        bases: List[Tuple[str, str, str, DistanceMatrix]] = []
        for source in self.sources:
            bases.extend(self._materialise_source(source))
        cases = [
            Case(
                id=f"{base_id}@{method}",
                matrix=matrix,
                method=method,
                options=dict(self.options),
                family=family,
                source=source_kind,
            )
            for base_id, family, source_kind, matrix in bases
            for method in chosen
        ]
        seen: Dict[str, str] = {}
        for case in cases:
            if case.id in seen:
                raise SuiteError(f"duplicate case id {case.id!r} in suite")
            seen[case.id] = case.id
        return cases

    def _materialise_source(
        self, source: Mapping[str, object]
    ) -> List[Tuple[str, str, str, DistanceMatrix]]:
        kind = source.get("kind")
        handler = {
            "generated": self._source_generated,
            "random": self._source_random,
            "hierarchical": self._source_hierarchical,
            "hmdna": self._source_hmdna,
            "glob": self._source_glob,
        }.get(kind)
        if handler is None:
            raise SuiteError(
                f"unknown case source kind {kind!r}; expected one of "
                "generated/random/hierarchical/hmdna/glob"
            )
        return handler(source)

    def _source_generated(self, source):
        from repro.verify.fuzz import FAMILIES

        families = list(source.get("families", FAMILIES))
        sizes = [int(n) for n in source.get("sizes", (6,))]
        count = int(source.get("count", 1))
        unknown = [f for f in families if f not in FAMILIES]
        if unknown:
            raise SuiteError(
                f"unknown generator families {unknown}; choose from "
                f"{sorted(FAMILIES)}"
            )
        if any(n < 3 for n in sizes) or count < 1:
            raise SuiteError("generated source needs sizes >= 3, count >= 1")
        out = []
        for family in families:
            for n in sizes:
                for i in range(count):
                    rng = _case_rng(self.seed, family, n, i)
                    matrix = FAMILIES[family](rng, n)
                    out.append(
                        (f"gen/{family}/n{n}/{i}", family, "generated", matrix)
                    )
        return out

    def _source_random(self, source):
        sizes = [int(n) for n in source.get("sizes", ())]
        seed = int(source.get("seed", self.seed))
        if not sizes or any(n < 3 for n in sizes):
            raise SuiteError("random source needs sizes >= 3")
        return [
            (
                f"random/n{n}/s{seed}",
                "random-metric",
                "random",
                random_metric_matrix(n, seed=seed),
            )
            for n in sizes
        ]

    def _source_hierarchical(self, source):
        spec = source.get("spec")
        if not spec:
            raise SuiteError("hierarchical source needs a 'spec' list")
        seed = int(source.get("seed", self.seed))
        jitter = float(source.get("jitter", 0.0))
        matrix = hierarchical_matrix(spec, seed=seed, jitter=jitter)
        # Specs nest arbitrarily ([[6, 5], [6, 5]]); a crc of the
        # canonical JSON is a short, stable id component.
        tag = f"{zlib.crc32(json.dumps(spec).encode('utf-8')):08x}"
        return [
            (
                f"hier/{tag}/s{seed}",
                "hierarchical",
                "hierarchical",
                matrix,
            )
        ]

    def _source_hmdna(self, source):
        from repro.sequences.hmdna import generate_hmdna_dataset

        species = [int(n) for n in source.get("species", (26,))]
        seeds = [int(s) for s in source.get("seeds", (self.seed,))]
        if any(n < 3 for n in species):
            raise SuiteError("hmdna source needs species >= 3")
        return [
            (
                f"hmdna/n{n}/s{seed}",
                "hmdna",
                "hmdna",
                generate_hmdna_dataset(n, seed=seed).matrix,
            )
            for n in species
            for seed in seeds
        ]

    def _source_glob(self, source):
        from repro.matrix.io import read_phylip

        pattern = source.get("pattern")
        if not pattern:
            raise SuiteError("glob source needs a 'pattern'")
        matches = sorted(glob(str(pattern)))
        if not matches:
            raise SuiteError(f"glob pattern {pattern!r} matched no files")
        out = []
        for path in matches:
            try:
                matrix = read_phylip(path)
            except (ValueError, OSError) as exc:
                raise SuiteError(f"unreadable matrix file {path}: {exc}")
            out.append(
                (f"file/{_sanitize(Path(path).name)}", "file", "glob", matrix)
            )
        return out


# ----------------------------------------------------------------------
# builtin suites
# ----------------------------------------------------------------------
#: Named suites usable directly as ``repro-mut campaign run --suite <name>``.
BUILTIN_SUITES: Dict[str, Dict[str, object]] = {
    # Tiny cross-backend CI suite: 8 cases, seconds of work.
    "smoke": {
        "name": "smoke",
        "seed": 0,
        "methods": ["bnb", "upgmm"],
        "cases": [
            {
                "kind": "generated",
                "families": ["random-int", "ultrametric"],
                "sizes": [6, 7],
                "count": 1,
            },
        ],
    },
    # The regression-pin workloads: seeded matrices whose exact optima
    # are frozen in tests/data/seed_campaign.json (see docs/campaigns.md).
    "pins": {
        "name": "pins",
        "seed": 0,
        "methods": ["bnb", "compact"],
        "cases": [
            {"kind": "random", "sizes": [10, 12, 14, 16], "seed": 42},
            {"kind": "hierarchical", "spec": [5, 5], "seed": 110,
             "jitter": 0.3},
            {"kind": "hmdna", "species": [12], "seeds": [7]},
        ],
    },
    # The paper's HMDNA experimental program (exact solves get large
    # above ~26 species; compact is the paper's own pipeline).
    "hmdna": {
        "name": "hmdna",
        "seed": 0,
        "methods": ["compact", "upgmm"],
        "cases": [
            {"kind": "hmdna", "species": [26, 30, 38], "seeds": [0, 1, 2]},
        ],
    },
}


def load_suite(spec: Union[str, Path, Mapping[str, object]]) -> Suite:
    """Resolve a suite from a spec dict, a JSON file path or a builtin name.

    Strings are tried as a file path first, then as a builtin suite
    name; anything else raises :class:`SuiteError` naming both options.
    """
    if isinstance(spec, Mapping):
        return Suite.from_spec(spec)
    path = Path(spec)
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SuiteError(f"unreadable suite spec {path}: {exc}")
        return Suite.from_spec(data)
    name = str(spec)
    if name in BUILTIN_SUITES:
        return Suite.from_spec(BUILTIN_SUITES[name])
    raise SuiteError(
        f"no suite spec file {name!r} and no builtin suite of that name "
        f"(builtins: {sorted(BUILTIN_SUITES)})"
    )
