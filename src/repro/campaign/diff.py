"""Cross-campaign (and cross-version) comparison.

``diff_campaigns`` aligns two campaigns' case rows by case id -- which
is why suite case ids are derived from the spec, never from matrix
contents -- and reports everything that changed between them:

* **cost changes**, with changes on *exact* methods beyond ``cost_eps``
  flagged as violations (an exact solver's optimum must be invariant
  across engine versions; a drift is a correctness bug, not noise);
* **verification regressions** (a case whose oracle verdict went from
  ok to violating) and **state regressions** (``done`` -> anything
  else);
* **input changes** (same case id, different matrix digest: a generator
  changed underneath the suite -- costs are then incomparable and are
  *not* flagged as violations, the digest change itself is the
  finding);
* **new / missing cases** (suite membership drift);
* **wall-time ratios** per matched case, with a median summary -- the
  perf-trend number the ROADMAP asks campaigns to unlock.

The diff never re-runs anything; it is a pure read of the run database,
so it works across machines by copying one SQLite file.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.db import CampaignDB
from repro.verify.differential import EXACT_METHODS

__all__ = ["CaseCostChange", "CampaignDiff", "diff_campaigns"]

#: Exact-method optima must agree across versions to this tolerance.
DEFAULT_COST_EPS = 1e-9


@dataclass(frozen=True)
class CaseCostChange:
    case_id: str
    method: str
    cost_a: float
    cost_b: float
    exact: bool

    @property
    def delta(self) -> float:
        return self.cost_b - self.cost_a

    def to_json(self) -> dict:
        return {
            "case_id": self.case_id,
            "method": self.method,
            "cost_a": self.cost_a,
            "cost_b": self.cost_b,
            "delta": self.delta,
            "exact": self.exact,
        }


@dataclass
class CampaignDiff:
    """Everything that differs between campaign ``a`` and campaign ``b``."""

    a: str
    b: str
    fingerprint_a: Dict[str, object]
    fingerprint_b: Dict[str, object]
    matched_cases: int = 0
    cost_changes: List[CaseCostChange] = field(default_factory=list)
    verification_regressions: List[dict] = field(default_factory=list)
    state_regressions: List[dict] = field(default_factory=list)
    input_changes: List[dict] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)
    time_ratios: Dict[str, float] = field(default_factory=dict)

    @property
    def exact_violations(self) -> List[CaseCostChange]:
        """Cost changes on exact methods -- the failing kind."""
        return [c for c in self.cost_changes if c.exact]

    @property
    def cross_version(self) -> bool:
        return self.fingerprint_a != self.fingerprint_b

    @property
    def median_time_ratio(self) -> Optional[float]:
        if not self.time_ratios:
            return None
        return statistics.median(self.time_ratios.values())

    @property
    def ok(self) -> bool:
        """No correctness-relevant change (cost drift on exact methods,
        verification regressions, state regressions).  Heuristic cost
        changes, timing and membership drift are reported but do not
        fail the diff."""
        return not (
            self.exact_violations
            or self.verification_regressions
            or self.state_regressions
        )

    @property
    def empty(self) -> bool:
        """Nothing differs at all (the self-diff/CI-smoke criterion;
        timing is excluded -- two runs never take identical time)."""
        return (
            self.ok
            and not self.cost_changes
            and not self.input_changes
            and not self.new_cases
            and not self.missing_cases
        )

    def to_json(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "fingerprint_a": self.fingerprint_a,
            "fingerprint_b": self.fingerprint_b,
            "cross_version": self.cross_version,
            "matched_cases": self.matched_cases,
            "cost_changes": [c.to_json() for c in self.cost_changes],
            "exact_violations": [
                c.to_json() for c in self.exact_violations
            ],
            "verification_regressions": list(self.verification_regressions),
            "state_regressions": list(self.state_regressions),
            "input_changes": list(self.input_changes),
            "new_cases": list(self.new_cases),
            "missing_cases": list(self.missing_cases),
            "median_time_ratio": self.median_time_ratio,
            "ok": self.ok,
            "empty": self.empty,
        }

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [
            f"campaign diff: {self.a} -> {self.b}"
            + (" [cross-version]" if self.cross_version else ""),
            f"  engines : {_fp_line(self.fingerprint_a)} -> "
            f"{_fp_line(self.fingerprint_b)}",
            f"  matched : {self.matched_cases} case(s)",
        ]
        if self.median_time_ratio is not None:
            lines.append(
                f"  time    : median wall-time ratio "
                f"{self.median_time_ratio:.2f}x over "
                f"{len(self.time_ratios)} case(s)"
            )
        for change in self.exact_violations:
            lines.append(
                f"  EXACT COST CHANGE {change.case_id}: "
                f"{change.cost_a!r} -> {change.cost_b!r} "
                f"(delta {change.delta:+.3g})"
            )
        for change in self.cost_changes:
            if not change.exact:
                lines.append(
                    f"  heuristic cost change {change.case_id}: "
                    f"{change.cost_a!r} -> {change.cost_b!r}"
                )
        for reg in self.verification_regressions:
            lines.append(
                f"  VERIFICATION REGRESSION {reg['case_id']}: "
                f"{reg['a']} -> {reg['b']}"
            )
        for reg in self.state_regressions:
            lines.append(
                f"  STATE REGRESSION {reg['case_id']}: "
                f"{reg['a']} -> {reg['b']} ({reg.get('error') or 'no error'})"
            )
        for change in self.input_changes:
            lines.append(
                f"  input changed {change['case_id']}: matrix digest "
                f"differs (generator drift?); costs not compared"
            )
        if self.new_cases:
            lines.append(f"  new in {self.b}: {', '.join(self.new_cases)}")
        if self.missing_cases:
            lines.append(
                f"  missing from {self.b}: {', '.join(self.missing_cases)}"
            )
        lines.append(
            "  verdict : " + ("OK" if self.ok else "REGRESSIONS FOUND")
            + (" (no differences)" if self.empty else "")
        )
        return "\n".join(lines)


def _fp_line(fp: Dict[str, object]) -> str:
    sha = fp.get("git_sha")
    return f"v{fp.get('version', '?')}" + (f"@{sha}" if sha else "")


def _verified(row: dict) -> Optional[bool]:
    flag = row.get("verified_ok")
    return None if flag is None else bool(flag)


def diff_campaigns(
    db: CampaignDB,
    name_a: str,
    name_b: str,
    *,
    cost_eps: float = DEFAULT_COST_EPS,
) -> CampaignDiff:
    """Compare campaign ``name_b`` against baseline ``name_a``."""
    campaign_a = db.get_campaign(name_a)
    campaign_b = db.get_campaign(name_b)
    if campaign_a is None:
        raise KeyError(f"no campaign named {name_a!r}")
    if campaign_b is None:
        raise KeyError(f"no campaign named {name_b!r}")
    rows_a = {r["case_id"]: r for r in db.case_rows(int(campaign_a["id"]))}
    rows_b = {r["case_id"]: r for r in db.case_rows(int(campaign_b["id"]))}
    diff = CampaignDiff(
        a=name_a,
        b=name_b,
        fingerprint_a=json.loads(campaign_a["fingerprint"] or "{}"),
        fingerprint_b=json.loads(campaign_b["fingerprint"] or "{}"),
        new_cases=sorted(set(rows_b) - set(rows_a)),
        missing_cases=sorted(set(rows_a) - set(rows_b)),
    )
    for case_id in sorted(set(rows_a) & set(rows_b)):
        a, b = rows_a[case_id], rows_b[case_id]
        diff.matched_cases += 1
        if (
            a.get("matrix_digest")
            and b.get("matrix_digest")
            and a["matrix_digest"] != b["matrix_digest"]
        ):
            diff.input_changes.append({
                "case_id": case_id,
                "digest_a": a["matrix_digest"],
                "digest_b": b["matrix_digest"],
            })
            continue  # different input: nothing else is comparable
        if a["state"] == "done" and b["state"] != "done":
            diff.state_regressions.append({
                "case_id": case_id,
                "a": a["state"],
                "b": b["state"],
                "error": b.get("error"),
            })
        cost_a, cost_b = a.get("cost"), b.get("cost")
        if (
            cost_a is not None
            and cost_b is not None
            and abs(cost_b - cost_a) > cost_eps
        ):
            diff.cost_changes.append(CaseCostChange(
                case_id=case_id,
                method=str(b.get("method")),
                cost_a=float(cost_a),
                cost_b=float(cost_b),
                exact=b.get("method") in EXACT_METHODS,
            ))
        ok_a, ok_b = _verified(a), _verified(b)
        if ok_a is True and ok_b is False:
            diff.verification_regressions.append({
                "case_id": case_id,
                "a": "ok",
                "b": "violations",
                "violations": b.get("violations"),
            })
        wall_a, wall_b = a.get("wall_seconds"), b.get("wall_seconds")
        if wall_a and wall_b and wall_a > 0:
            diff.time_ratios[case_id] = float(wall_b) / float(wall_a)
    return diff
