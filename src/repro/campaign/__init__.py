"""Campaigns: suites of cases, a persistent run database, and diffs.

The bookkeeping layer over everything else the repository can execute.
A :class:`Suite` names a deterministic set of (matrix, method) cases; a
*campaign* is one execution of a suite through the serving layer's
scheduler, recorded case-by-case in a SQLite :class:`CampaignDB` under
the engine fingerprint that produced it; :func:`diff_campaigns` compares
two campaigns -- including campaigns run by different engine versions --
for cost drift, verification regressions and performance trends.

CLI surface: ``repro-mut campaign run|status|list|diff|trend|export``.
Documentation: ``docs/campaigns.md``.
"""

from repro.campaign.db import DB_SCHEMA_VERSION, CampaignDB, CampaignExists
from repro.campaign.diff import CampaignDiff, CaseCostChange, diff_campaigns
from repro.campaign.trend import CampaignTrend, CaseTrend, trend_campaigns
from repro.campaign.runner import (
    CampaignMismatch,
    CampaignResult,
    run_campaign,
)
from repro.campaign.suite import (
    BUILTIN_SUITES,
    Case,
    Suite,
    SuiteError,
    load_suite,
)

__all__ = [
    "BUILTIN_SUITES",
    "CampaignDB",
    "CampaignDiff",
    "CampaignExists",
    "CampaignMismatch",
    "CampaignResult",
    "CampaignTrend",
    "Case",
    "CaseCostChange",
    "CaseTrend",
    "DB_SCHEMA_VERSION",
    "Suite",
    "SuiteError",
    "diff_campaigns",
    "load_suite",
    "run_campaign",
    "trend_campaigns",
]
