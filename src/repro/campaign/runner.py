"""The campaign runner: execute a suite through the job scheduler.

A campaign is *one recorded execution* of a suite.  The runner reuses
the serving layer's :class:`~repro.service.scheduler.Scheduler` rather
than calling the engines directly, so campaigns inherit everything the
service already guarantees: bounded admission, in-flight dedup, the
content-addressed result cache, per-job deadlines, worker supervision
on the process backend, and ``service.job`` spans / cache counters in
the shared trace stream.

What the runner adds on top:

* **Persistence** -- every settled case is upserted into the
  :class:`~repro.campaign.db.CampaignDB` the moment it settles (state,
  cost, newick, cache status, wall/solve seconds, span rollups, search
  counters, verification verdict), so an interrupt loses at most the
  in-flight window.
* **Resume** -- re-running a campaign name skips cases that already
  have a ``done`` row (failed/timeout cases are retried by default);
  the suite spec is validated against the stored one, so a resumed
  campaign can never silently execute a different workload.
* **Interruption** -- a ``stop`` event (the CLI arms it from
  SIGTERM/SIGINT) stops *submission*, drains the in-flight window,
  persists it, and marks the campaign ``interrupted``.
* **Observability** -- a ``campaign.case`` span per case (submit ->
  settle, so queue wait is visible) and ``campaign.cases{state}``
  counters in the metrics registry, so ``/metrics`` shows live campaign
  progress.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.db import CampaignDB
from repro.campaign.suite import Case, Suite
from repro.obs.metrics import MetricsRegistry, as_metrics
from repro.obs.recorder import NullRecorder, Recorder, SpanEvent, as_recorder
from repro.service.cache import cache_key
from repro.service.jobs import Job, JobState
from repro.service.scheduler import Scheduler
from repro.version import engine_fingerprint

__all__ = ["CampaignMismatch", "CampaignResult", "run_campaign"]

#: Job terminal state -> persisted case state (identical strings today,
#: but the mapping is the explicit contract).
_JOB_STATE_TO_CASE = {
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.TIMEOUT: "timeout",
    JobState.CANCELLED: "cancelled",
}

#: Case states that count as "already completed" for resume purposes.
RESUME_SKIP_STATES = ("done",)


class CampaignMismatch(RuntimeError):
    """Resuming a campaign whose stored suite spec differs."""


@dataclass
class CampaignResult:
    """What one ``run_campaign`` invocation did (not the whole campaign:
    a resume reports only its own executed/skipped split)."""

    name: str
    campaign_id: int
    status: str
    total_cases: int
    executed: int = 0
    skipped: int = 0
    interrupted: bool = False
    state_counts: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Completed with every case ``done``."""
        return self.status == "completed" and all(
            state == "done" or count == 0
            for state, count in self.state_counts.items()
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "campaign_id": self.campaign_id,
            "status": self.status,
            "total_cases": self.total_cases,
            "executed": self.executed,
            "skipped": self.skipped,
            "interrupted": self.interrupted,
            "state_counts": dict(self.state_counts),
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
        }


def _trace_safe(case_id: str) -> str:
    """A case id reduced to the charset trace ids allow."""
    return re.sub(r"[^A-Za-z0-9._-]", "-", case_id)[:96]


def _rollups(events, trace_id: str) -> Dict[str, dict]:
    """Per-name span totals and counter sums for one case's trace.

    Also keeps the *last* ``bnb.progress`` heartbeat's attrs (under
    ``"progress"``): the solver's closing incumbent/bound/gap snapshot,
    which :func:`_persist_case` folds into the counters column so
    ``campaign trend`` can track convergence quality across versions.
    """
    from repro.obs.profile import filter_by_trace_id

    mine = filter_by_trace_id(events, trace_id)
    spans: Dict[str, dict] = {}
    counters: Dict[str, float] = {}
    progress_final: Optional[dict] = None
    for event in mine:
        if isinstance(event, SpanEvent):
            entry = spans.setdefault(event.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += event.duration
        else:
            counters[event.name] = counters.get(event.name, 0.0) + event.value
            if event.name == "bnb.progress":
                progress_final = dict(event.attrs)
    return {"spans": spans, "counters": counters, "progress": progress_final}


def run_campaign(
    db: Union[CampaignDB, str],
    suite: Suite,
    *,
    name: Optional[str] = None,
    methods: Optional[List[str]] = None,
    backend: str = "thread",
    workers: int = 4,
    start_method: Optional[str] = None,
    verify: bool = True,
    job_timeout: Optional[float] = None,
    recorder: Optional[NullRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    stop: Optional[threading.Event] = None,
    stop_after: Optional[int] = None,
    throttle_seconds: float = 0.0,
    progress: Optional[Callable[[int, int, Case, str], None]] = None,
) -> CampaignResult:
    """Execute (or resume) ``suite`` as the campaign called ``name``.

    Parameters beyond the obvious:

    stop:
        A :class:`threading.Event`; once set, no further cases are
        submitted, the in-flight window is drained and persisted, and
        the campaign is marked ``interrupted``.  The CLI arms it from
        SIGTERM/SIGINT, which is the graceful-drain path the resume
        tests exercise.
    stop_after:
        Deterministic interruption aid: behave as if ``stop`` fired
        after this many cases were *executed this invocation* (resume
        tests use it to carve a campaign into exact halves).
    throttle_seconds:
        Sleep between submissions -- keeps a smoke campaign from
        saturating a shared host and gives the SIGTERM tests a stable
        window to interrupt.
    verify:
        Run the result oracles on every payload (the scheduler's
        ``verify=True`` path) and persist the verdict per case.
    progress:
        ``(index, total, case, state)`` callback after each settle.

    Returns a :class:`CampaignResult`; the full per-case record lives in
    the database.
    """
    own_db = isinstance(db, str)
    handle = CampaignDB(db) if own_db else db
    rec = Recorder() if recorder is None else as_recorder(recorder)
    registry = as_metrics(metrics)
    m_cases = registry.counter(
        "campaign.cases",
        "Campaign cases settled, by terminal state.",
        labelnames=("state",),
    )
    stop = stop or threading.Event()
    t_start = time.time()
    try:
        cases = suite.cases(methods)
        campaign_name = name or suite.name
        fingerprint = engine_fingerprint()
        existing = handle.get_campaign(campaign_name)
        skipped_ids = set()
        if existing is not None:
            if existing["suite_spec"] != suite.spec_json():
                raise CampaignMismatch(
                    f"campaign {campaign_name!r} was recorded for a "
                    f"different suite spec; diff the specs or pick a new "
                    f"campaign name"
                )
            campaign_id = int(existing["id"])
            skipped_ids = handle.case_ids_in_state(
                campaign_id, RESUME_SKIP_STATES
            )
            handle.mark_resumed(campaign_id, fingerprint, backend)
        else:
            campaign_id = handle.create_campaign(
                campaign_name,
                suite=suite.name,
                suite_spec=suite.spec_json(),
                seed=suite.seed,
                backend=backend,
                hostname=socket.gethostname(),
                fingerprint=fingerprint,
            )

        result = CampaignResult(
            name=campaign_name,
            campaign_id=campaign_id,
            status="running",
            total_cases=len(cases),
            skipped=len([c for c in cases if c.id in skipped_ids]),
        )

        pending = [c for c in cases if c.id not in skipped_ids]
        window = max(2 * workers, 4)
        scheduler = Scheduler(
            workers=workers,
            queue_size=window + workers,
            recorder=rec,
            metrics=registry,
            default_timeout=job_timeout,
            backend=backend,
            start_method=start_method,
        )
        inflight: List[tuple] = []  # (case, job|None, error, t_submit)
        settled = 0

        def settle_one() -> None:
            nonlocal settled
            case, job, submit_error, t_submit = inflight.pop(0)
            state = _persist_case(
                handle, campaign_id, case, job, submit_error, rec,
                t_submit=t_submit,
            )
            m_cases.inc(state=state)
            settled += 1
            result.executed += 1
            if progress is not None:
                progress(settled, len(pending), case, state)

        try:
            for case in pending:
                if stop.is_set() or (
                    stop_after is not None and result.executed +
                    len(inflight) >= stop_after
                ):
                    result.interrupted = True
                    break
                if throttle_seconds > 0:
                    time.sleep(throttle_seconds)
                t_submit = rec.clock()
                try:
                    job = scheduler.submit(
                        case.matrix,
                        case.method,
                        case.cache_options(),
                        trace_id=f"campaign-{campaign_id}-"
                                 f"{_trace_safe(case.id)}",
                        verify=verify,
                    )
                    inflight.append((case, job, None, t_submit))
                except Exception as exc:  # noqa: BLE001 - persist, go on
                    inflight.append((case, None, exc, t_submit))
                while len(inflight) >= window:
                    settle_one()
            if stop.is_set():
                result.interrupted = True
            while inflight:
                settle_one()
        finally:
            scheduler.shutdown(drain=True)

        status = "interrupted" if result.interrupted else "completed"
        handle.mark_status(campaign_id, status)
        result.status = status
        result.state_counts = handle.state_counts(campaign_id)
        result.elapsed_seconds = time.time() - t_start
        return result
    finally:
        if own_db:
            handle.close()


def _persist_case(
    db: CampaignDB,
    campaign_id: int,
    case: Case,
    job: Optional[Job],
    submit_error: Optional[BaseException],
    rec: NullRecorder,
    *,
    t_submit: float,
) -> str:
    """Wait out one case's job, upsert its row, emit its span."""
    if job is not None:
        job.wait()
        state = _JOB_STATE_TO_CASE.get(job.state, "failed")
        payload = job.payload or {}
        verification = job.verification
    else:
        state = "failed"
        payload = {}
        verification = None
    t_settle = rec.clock()
    trace_id = job.trace_id if job is not None else None
    roll = (
        _rollups(rec.events, trace_id)
        if rec.enabled and trace_id else {"spans": {}, "counters": {}}
    )
    job_span = roll["spans"].get("service.job", {})
    solve_span = roll["spans"].get("bnb.solve", {})
    wall = job_span.get("seconds")
    if wall is None and job is not None and job.finished_at and job.started_at:
        wall = job.finished_at - job.started_at
    verified_ok: Optional[int] = None
    violations_json: Optional[str] = None
    if verification is not None and "ok" in verification:
        verified_ok = 1 if verification["ok"] else 0
        violations_json = json.dumps(
            verification.get("violations", []), sort_keys=True
        )
    final_progress = roll.get("progress")
    if final_progress is not None:
        # Scalar convergence rollups ride the counters JSON column (no
        # schema bump): the solver's closing gap and lower bound.
        if final_progress.get("gap") is not None:
            roll["counters"]["bnb.final_gap"] = float(final_progress["gap"])
        if final_progress.get("best_lower_bound") is not None:
            roll["counters"]["bnb.final_lower_bound"] = float(
                final_progress["best_lower_bound"]
            )
    nodes = roll["counters"].get("bnb.nodes_expanded")
    if nodes is None and final_progress is not None:
        nodes = final_progress.get("nodes_expanded")
    error = None
    if submit_error is not None:
        error = f"{type(submit_error).__name__}: {submit_error}"
    elif job is not None and job.error:
        error = job.error
    db.upsert_case(
        campaign_id,
        case.id,
        family=case.family,
        source=case.source,
        n_species=case.matrix.n,
        method=case.method,
        options=json.dumps(dict(case.options), sort_keys=True),
        matrix_digest=case.matrix.digest(),
        cache_key=cache_key(case.matrix, case.method, case.options),
        state=state,
        cost=payload.get("cost"),
        newick=payload.get("newick"),
        error=error,
        cache_status=job.cache_status if job is not None else None,
        wall_seconds=wall,
        solve_seconds=solve_span.get("seconds"),
        nodes_expanded=int(nodes) if nodes is not None else None,
        verified_ok=verified_ok,
        violations=violations_json,
        spans=json.dumps(roll["spans"], sort_keys=True),
        counters=json.dumps(roll["counters"], sort_keys=True),
        finished_at=time.time(),
    )
    # Submit -> settle (queue wait included; attrs say so), so live
    # traces show campaign progress case by case.
    rec.add_span(
        "campaign.case",
        t_submit,
        t_settle,
        case=case.id,
        method=case.method,
        n=case.matrix.n,
        state=state,
        includes_queue_wait=True,
    )
    return state
