"""Perf-trend reports across two or more campaigns.

``campaign diff`` answers "did B regress against A?" for one pair;
``trend_campaigns`` answers the longitudinal question the run database
was built to unlock: *how has the engine moved across N versions?*  It
aligns any number of campaigns by case id (oldest campaign first, by
start time) and builds, per case, the wall-seconds / solve-seconds /
nodes-expanded **series** across the campaigns, then condenses each
campaign into geometric-mean ratios against the oldest one.

Geometric means -- not arithmetic -- because per-case ratios are
multiplicative: a campaign that halves one case and doubles another is
a wash (geomean 1.0), not a 25% improvement.  Cases missing from a
campaign, or with non-positive baseline values, simply drop out of that
campaign's mean; the per-case table still shows the hole.

Like :func:`~repro.campaign.diff.diff_campaigns` this never re-runs
anything -- it is a pure read of the SQLite run database, so trends
work across machines by copying one file.  ``render`` emits a markdown
report (tables paste into PRs); ``to_json`` the machine-readable form.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.db import CampaignDB

__all__ = ["CaseTrend", "CampaignTrend", "trend_campaigns"]


def _geomean(ratios: Sequence[float]) -> Optional[float]:
    """Geometric mean of positive ratios; ``None`` when there are none."""
    logs = [math.log(r) for r in ratios if r > 0.0]
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def _fp_line(fp: Dict[str, object]) -> str:
    sha = fp.get("git_sha")
    return f"v{fp.get('version', '?')}" + (f"@{sha}" if sha else "")


def _fmt(value: Optional[float], spec: str = ".3f") -> str:
    return "-" if value is None else format(value, spec)


@dataclass(frozen=True)
class CaseTrend:
    """One case's metric series across the campaigns (oldest first).

    Each list has one slot per campaign; ``None`` marks a campaign the
    case did not run in (or ran without that metric recorded).
    """

    case_id: str
    method: str
    wall_seconds: List[Optional[float]]
    solve_seconds: List[Optional[float]]
    nodes_expanded: List[Optional[int]]

    def to_json(self) -> dict:
        return {
            "case_id": self.case_id,
            "method": self.method,
            "wall_seconds": list(self.wall_seconds),
            "solve_seconds": list(self.solve_seconds),
            "nodes_expanded": list(self.nodes_expanded),
        }


@dataclass
class CampaignTrend:
    """The aligned series plus per-campaign geomean ratios vs the oldest."""

    campaigns: List[str]
    fingerprints: List[Dict[str, object]]
    cases: List[CaseTrend] = field(default_factory=list)
    #: Per campaign: geomean of (campaign / baseline) per-case ratios;
    #: index 0 (the baseline itself) is 1.0, ``None`` = no overlap.
    wall_geomean: List[Optional[float]] = field(default_factory=list)
    solve_geomean: List[Optional[float]] = field(default_factory=list)
    nodes_geomean: List[Optional[float]] = field(default_factory=list)

    @property
    def baseline(self) -> str:
        return self.campaigns[0]

    def to_json(self) -> dict:
        return {
            "campaigns": list(self.campaigns),
            "baseline": self.baseline,
            "fingerprints": list(self.fingerprints),
            "cases": [case.to_json() for case in self.cases],
            "wall_geomean": list(self.wall_geomean),
            "solve_geomean": list(self.solve_geomean),
            "nodes_geomean": list(self.nodes_geomean),
        }

    # ------------------------------------------------------------------
    def _series_table(
        self, title: str, metric: str, spec: str
    ) -> List[str]:
        lines = [f"## {title}", ""]
        lines.append("| case | " + " | ".join(self.campaigns) + " |")
        lines.append("|---" * (len(self.campaigns) + 1) + "|")
        for case in self.cases:
            values = getattr(case, metric)
            cells = " | ".join(_fmt(v, spec) for v in values)
            lines.append(f"| {case.case_id} | {cells} |")
        lines.append("")
        return lines

    def render(self) -> str:
        """Markdown report: summary table + one table per metric."""
        chain = " -> ".join(self.campaigns)
        lines = [
            f"# campaign trend: {chain}",
            "",
            f"geomean ratios vs oldest campaign `{self.baseline}` "
            f"(<1.00x = faster / fewer nodes); {len(self.cases)} case(s)",
            "",
            "| campaign | engine | wall | solve | nodes |",
            "|---|---|---|---|---|",
        ]
        for i, name in enumerate(self.campaigns):
            tag = " (baseline)" if i == 0 else ""
            lines.append(
                f"| {name}{tag} | {_fp_line(self.fingerprints[i])} | "
                f"{_fmt(self.wall_geomean[i], '.2f')}x | "
                f"{_fmt(self.solve_geomean[i], '.2f')}x | "
                f"{_fmt(self.nodes_geomean[i], '.2f')}x |"
            )
        lines.append("")
        lines += self._series_table(
            "per-case wall seconds", "wall_seconds", ".3f"
        )
        lines += self._series_table(
            "per-case solve seconds", "solve_seconds", ".3f"
        )
        lines += self._series_table(
            "per-case nodes expanded", "nodes_expanded", "d"
        )
        return "\n".join(lines).rstrip() + "\n"


def trend_campaigns(
    db: CampaignDB, names: Sequence[str]
) -> CampaignTrend:
    """Build a trend report over ``names`` (any order; sorted oldest
    first by campaign start time).  Raises :class:`KeyError` for an
    unknown campaign name or fewer than two distinct names.
    """
    distinct = list(dict.fromkeys(names))
    if len(distinct) < 2:
        raise KeyError("trend needs at least two distinct campaign names")
    campaigns = []
    for name in distinct:
        campaign = db.get_campaign(name)
        if campaign is None:
            raise KeyError(f"no campaign named {name!r}")
        campaigns.append(campaign)
    campaigns.sort(key=lambda c: (c["started_at"], c["id"]))

    rows_by_campaign = [
        {r["case_id"]: r for r in db.case_rows(int(c["id"]))}
        for c in campaigns
    ]
    case_ids = sorted(set().union(*[set(rows) for rows in rows_by_campaign]))

    trend = CampaignTrend(
        campaigns=[str(c["name"]) for c in campaigns],
        fingerprints=[
            json.loads(c["fingerprint"] or "{}") for c in campaigns
        ],
    )

    def _series(case_id: str, column: str) -> List[Optional[float]]:
        out: List[Optional[float]] = []
        for rows in rows_by_campaign:
            value = rows.get(case_id, {}).get(column)
            out.append(None if value is None else value)
        return out

    for case_id in case_ids:
        method = next(
            (
                str(rows[case_id]["method"])
                for rows in rows_by_campaign
                if case_id in rows
            ),
            "?",
        )
        trend.cases.append(CaseTrend(
            case_id=case_id,
            method=method,
            wall_seconds=_series(case_id, "wall_seconds"),
            solve_seconds=_series(case_id, "solve_seconds"),
            nodes_expanded=_series(case_id, "nodes_expanded"),
        ))

    for metric, sink in (
        ("wall_seconds", trend.wall_geomean),
        ("solve_seconds", trend.solve_geomean),
        ("nodes_expanded", trend.nodes_geomean),
    ):
        for i in range(len(campaigns)):
            if i == 0:
                sink.append(1.0)
                continue
            ratios = []
            for case in trend.cases:
                series = getattr(case, metric)
                base, here = series[0], series[i]
                if base and here and base > 0 and here > 0:
                    ratios.append(float(here) / float(base))
            sink.append(_geomean(ratios))
    return trend
