"""The persistent run database: campaigns, cases and archived failures.

One SQLite file (WAL mode, so ``campaign status`` and the resume test
can read while a runner writes) holds everything a campaign produces:

``campaigns``
    One row per named campaign: the canonical suite spec it executed,
    the engine fingerprint it ran under (version, cache-key version,
    trace schema, git sha), hostname, scheduler backend, lifecycle
    status (``running`` / ``completed`` / ``interrupted``) and timing.

``cases``
    One row per case, keyed ``(campaign_id, case_id)`` with an
    **idempotent upsert** -- however many times a case is executed
    (resume, retry, crash-replay), the campaign holds exactly one row
    for it, carrying the latest result: terminal state, cost, newick,
    cache status, wall/solve seconds, span rollups, search counters and
    the verification verdict.

``fuzz_failures``
    Archived fuzz-corpus entries (``repro-mut fuzz --db``): corpus file
    path + matrix digest + violations + the engine fingerprint that
    produced them, so a failure found under one engine can be re-triaged
    against another.

Schema changes bump :data:`DB_SCHEMA_VERSION`; an existing file with a
different version is refused loudly rather than silently misread.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

__all__ = [
    "DB_SCHEMA_VERSION",
    "CampaignDB",
    "CampaignExists",
    "strip_volatile",
]

#: Bumped whenever the table layout changes incompatibly.
DB_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS db_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id                INTEGER PRIMARY KEY AUTOINCREMENT,
    name              TEXT NOT NULL UNIQUE,
    suite             TEXT NOT NULL,
    suite_spec        TEXT NOT NULL,
    seed              INTEGER NOT NULL,
    status            TEXT NOT NULL,
    started_at        REAL NOT NULL,
    finished_at       REAL,
    resumes           INTEGER NOT NULL DEFAULT 0,
    backend           TEXT NOT NULL,
    hostname          TEXT,
    engine_version    TEXT NOT NULL,
    cache_key_version INTEGER NOT NULL,
    trace_schema      INTEGER NOT NULL,
    git_sha           TEXT,
    fingerprint       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cases (
    campaign_id   INTEGER NOT NULL REFERENCES campaigns(id),
    case_id       TEXT NOT NULL,
    family        TEXT,
    source        TEXT,
    n_species     INTEGER,
    method        TEXT NOT NULL,
    options       TEXT NOT NULL DEFAULT '{}',
    matrix_digest TEXT,
    cache_key     TEXT,
    state         TEXT NOT NULL,
    cost          REAL,
    newick        TEXT,
    error         TEXT,
    cache_status  TEXT,
    wall_seconds  REAL,
    solve_seconds REAL,
    nodes_expanded INTEGER,
    verified_ok   INTEGER,
    violations    TEXT,
    spans         TEXT,
    counters      TEXT,
    finished_at   REAL,
    PRIMARY KEY (campaign_id, case_id)
);
CREATE INDEX IF NOT EXISTS cases_by_state
    ON cases (campaign_id, state);
CREATE TABLE IF NOT EXISTS fuzz_failures (
    master_seed       INTEGER NOT NULL,
    iteration         INTEGER NOT NULL,
    matrix_digest     TEXT NOT NULL,
    family            TEXT,
    n_species         INTEGER,
    shrunk_n_species  INTEGER,
    corpus_path       TEXT,
    meta_path         TEXT,
    repro_command     TEXT,
    violations        TEXT,
    archived_at       REAL NOT NULL,
    engine_version    TEXT,
    cache_key_version INTEGER,
    trace_schema      INTEGER,
    git_sha           TEXT,
    fingerprint       TEXT,
    PRIMARY KEY (master_seed, iteration, matrix_digest)
);
"""

#: ``cases`` columns settable through :meth:`CampaignDB.upsert_case`.
_CASE_COLUMNS = (
    "family", "source", "n_species", "method", "options", "matrix_digest",
    "cache_key", "state", "cost", "newick", "error", "cache_status",
    "wall_seconds", "solve_seconds", "nodes_expanded", "verified_ok",
    "violations", "spans", "counters", "finished_at",
)


class CampaignExists(RuntimeError):
    """A campaign with this name already exists (and resume was off)."""


class CampaignDB:
    """Thin, typed wrapper over the campaign SQLite file.

    Single-connection, single-thread by design: the runner persists from
    its submission loop only.  Concurrent *readers* (status commands,
    the resume test polling progress) are served by WAL mode.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM db_meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO db_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(DB_SCHEMA_VERSION)),
            )
            self._conn.commit()
        elif int(row["value"]) != DB_SCHEMA_VERSION:
            version = int(row["value"])
            self._conn.close()
            raise RuntimeError(
                f"campaign database {self.path} has schema v{version}; "
                f"this engine reads v{DB_SCHEMA_VERSION} -- use a fresh "
                f"database file"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def create_campaign(
        self,
        name: str,
        *,
        suite: str,
        suite_spec: str,
        seed: int,
        backend: str,
        hostname: Optional[str],
        fingerprint: Dict[str, object],
        started_at: Optional[float] = None,
    ) -> int:
        """Insert a new ``running`` campaign row; returns its id."""
        if self.get_campaign(name) is not None:
            raise CampaignExists(f"campaign {name!r} already exists")
        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, suite, suite_spec, seed, status,"
            " started_at, backend, hostname, engine_version,"
            " cache_key_version, trace_schema, git_sha, fingerprint)"
            " VALUES (?, ?, ?, ?, 'running', ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                suite,
                suite_spec,
                int(seed),
                time.time() if started_at is None else started_at,
                backend,
                hostname,
                str(fingerprint.get("version")),
                int(fingerprint.get("cache_key_version", 0)),
                int(fingerprint.get("trace_schema", 0)),
                fingerprint.get("git_sha"),
                json.dumps(fingerprint, sort_keys=True),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def get_campaign(self, name: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        return dict(row) if row is not None else None

    def list_campaigns(self) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT * FROM campaigns ORDER BY id"
        ).fetchall()
        return [dict(row) for row in rows]

    def mark_resumed(
        self, campaign_id: int, fingerprint: Dict[str, object], backend: str
    ) -> None:
        """Flip an interrupted/running campaign back to ``running``.

        The fingerprint columns are updated to the *resuming* engine --
        the campaign records whichever engine last touched it, and the
        bumped ``resumes`` counter flags that more than one did.
        """
        self._conn.execute(
            "UPDATE campaigns SET status='running', finished_at=NULL,"
            " resumes=resumes+1, backend=?, engine_version=?,"
            " cache_key_version=?, trace_schema=?, git_sha=?, fingerprint=?"
            " WHERE id=?",
            (
                backend,
                str(fingerprint.get("version")),
                int(fingerprint.get("cache_key_version", 0)),
                int(fingerprint.get("trace_schema", 0)),
                fingerprint.get("git_sha"),
                json.dumps(fingerprint, sort_keys=True),
                campaign_id,
            ),
        )
        self._conn.commit()

    def mark_status(
        self,
        campaign_id: int,
        status: str,
        *,
        finished_at: Optional[float] = None,
    ) -> None:
        assert status in ("running", "completed", "interrupted")
        self._conn.execute(
            "UPDATE campaigns SET status=?, finished_at=? WHERE id=?",
            (
                status,
                (
                    time.time()
                    if finished_at is None and status != "running"
                    else finished_at
                ),
                campaign_id,
            ),
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # cases
    # ------------------------------------------------------------------
    def upsert_case(self, campaign_id: int, case_id: str, **fields) -> None:
        """Insert-or-update one case row and commit.

        The ``(campaign_id, case_id)`` key makes re-execution idempotent:
        a resumed or retried case *replaces* its previous row's values.
        Committing per case is what makes interrupt-resume work -- every
        settled case is durable the moment it settles (WAL keeps the
        per-commit cost to one fsync-free page append).
        """
        unknown = set(fields) - set(_CASE_COLUMNS)
        if unknown:
            raise ValueError(f"unknown case columns: {sorted(unknown)}")
        columns = [c for c in _CASE_COLUMNS if c in fields]
        assignments = ", ".join(f"{c}=excluded.{c}" for c in columns)
        self._conn.execute(
            f"INSERT INTO cases (campaign_id, case_id, "
            f"{', '.join(columns)}) VALUES (?, ?, "
            f"{', '.join('?' for _ in columns)}) "
            f"ON CONFLICT (campaign_id, case_id) DO UPDATE SET {assignments}",
            (campaign_id, case_id, *(fields[c] for c in columns)),
        )
        self._conn.commit()

    def case_rows(self, campaign_id: int) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT * FROM cases WHERE campaign_id=? ORDER BY case_id",
            (campaign_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def case_ids_in_state(
        self, campaign_id: int, states: Iterable[str]
    ) -> Set[str]:
        states = tuple(states)
        if not states:
            return set()
        rows = self._conn.execute(
            f"SELECT case_id FROM cases WHERE campaign_id=? AND state IN "
            f"({', '.join('?' for _ in states)})",
            (campaign_id, *states),
        ).fetchall()
        return {row["case_id"] for row in rows}

    def state_counts(self, campaign_id: int) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM cases WHERE campaign_id=?"
            " GROUP BY state ORDER BY state",
            (campaign_id,),
        ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    # ------------------------------------------------------------------
    # export / import (the checked-in regression-pin format)
    # ------------------------------------------------------------------
    def export_campaign(self, name: str) -> Dict[str, object]:
        """The campaign and all its case rows as one JSON-safe dict."""
        campaign = self.get_campaign(name)
        if campaign is None:
            raise KeyError(f"no campaign named {name!r}")
        campaign_id = int(campaign.pop("id"))
        return {
            "format": "repro.campaign.export.v1",
            "campaign": campaign,
            "cases": self.case_rows(campaign_id),
        }

    def import_export(
        self, export: Dict[str, object], *, name: Optional[str] = None
    ) -> int:
        """Load an exported campaign (e.g. a checked-in seed export).

        ``name`` renames on import so a seed export can coexist with a
        fresh run of the same campaign name.  Returns the campaign id.
        """
        if export.get("format") != "repro.campaign.export.v1":
            raise ValueError(
                f"not a campaign export (format={export.get('format')!r})"
            )
        campaign = dict(export["campaign"])
        fingerprint = json.loads(campaign.get("fingerprint") or "{}")
        campaign_id = self.create_campaign(
            name or str(campaign["name"]),
            suite=str(campaign["suite"]),
            suite_spec=str(campaign["suite_spec"]),
            seed=int(campaign["seed"]),
            backend=str(campaign["backend"]),
            hostname=campaign.get("hostname"),
            fingerprint=fingerprint,
            started_at=campaign.get("started_at"),
        )
        for row in export["cases"]:
            row = dict(row)
            row.pop("campaign_id", None)
            case_id = row.pop("case_id")
            self.upsert_case(campaign_id, case_id, **row)
        self.mark_status(
            campaign_id,
            str(campaign.get("status", "completed")),
            finished_at=campaign.get("finished_at"),
        )
        return campaign_id

    # ------------------------------------------------------------------
    # fuzz-failure archive
    # ------------------------------------------------------------------
    def archive_fuzz_failure(
        self,
        *,
        master_seed: int,
        iteration: int,
        matrix_digest: str,
        family: Optional[str] = None,
        n_species: Optional[int] = None,
        shrunk_n_species: Optional[int] = None,
        corpus_path: Optional[str] = None,
        meta_path: Optional[str] = None,
        repro_command: Optional[str] = None,
        violations: Optional[List[dict]] = None,
        fingerprint: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one shrunk fuzz failure; idempotent per
        ``(master_seed, iteration, matrix_digest)``."""
        fp = dict(fingerprint or {})
        self._conn.execute(
            "INSERT INTO fuzz_failures (master_seed, iteration,"
            " matrix_digest, family, n_species, shrunk_n_species,"
            " corpus_path, meta_path, repro_command, violations,"
            " archived_at, engine_version, cache_key_version, trace_schema,"
            " git_sha, fingerprint)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT (master_seed, iteration, matrix_digest) DO UPDATE"
            " SET corpus_path=excluded.corpus_path,"
            "     meta_path=excluded.meta_path,"
            "     repro_command=excluded.repro_command,"
            "     violations=excluded.violations,"
            "     archived_at=excluded.archived_at,"
            "     engine_version=excluded.engine_version,"
            "     cache_key_version=excluded.cache_key_version,"
            "     trace_schema=excluded.trace_schema,"
            "     git_sha=excluded.git_sha,"
            "     fingerprint=excluded.fingerprint",
            (
                int(master_seed),
                int(iteration),
                matrix_digest,
                family,
                n_species,
                shrunk_n_species,
                corpus_path,
                meta_path,
                repro_command,
                json.dumps(violations or [], sort_keys=True),
                time.time(),
                fp.get("version"),
                fp.get("cache_key_version"),
                fp.get("trace_schema"),
                fp.get("git_sha"),
                json.dumps(fp, sort_keys=True),
            ),
        )
        self._conn.commit()

    def fuzz_failures(self) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT * FROM fuzz_failures ORDER BY master_seed, iteration"
        ).fetchall()
        return [dict(row) for row in rows]


#: Export fields that vary run to run (timing, host, cache luck) and
#: have no place in a checked-in seed export.
_VOLATILE_CAMPAIGN_FIELDS = ("started_at", "finished_at", "hostname")
_VOLATILE_CASE_FIELDS = (
    "wall_seconds", "solve_seconds", "spans", "counters", "finished_at",
    "cache_status",
)


def strip_volatile(export: Dict[str, object]) -> Dict[str, object]:
    """An export without its run-to-run fields (timing, host, cache
    status), leaving only what a seed-campaign pin should freeze:
    states, costs, newicks, digests, verification verdicts and search
    effort.  ``repro-mut campaign export --strip-volatile`` applies
    this before writing."""
    out = dict(export)
    out["campaign"] = {
        k: v for k, v in dict(out["campaign"]).items()
        if k not in _VOLATILE_CAMPAIGN_FIELDS
    }
    out["cases"] = [
        {k: v for k, v in dict(row).items()
         if k not in _VOLATILE_CASE_FIELDS}
        for row in out["cases"]
    ]
    return out
