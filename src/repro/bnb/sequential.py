"""Algorithm BBU: sequential branch-and-bound for minimum ultrametric trees.

The solver follows the pseudo-code both papers reproduce from Wu, Chao &
Tang (1999):

1. relabel the species into a max-min permutation;
2. create the BBT root -- the unique topology over species 1 and 2;
3. run UPGMM, store its cost as the initial upper bound UB;
4. depth-first search: branch by grafting the next species onto every
   edge (children visited best-lower-bound first), delete nodes with
   ``LB >= UB``, update UB whenever a cheaper complete tree appears.

The optional 3-3 relationship constraint (Step 4 of the parallel paper)
filters children as they are generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bnb.bounds import LOWER_BOUNDS, search_context
from repro.bnb.kernel import BranchKernel, expand_positions
from repro.bnb.relationship import insertion_is_consistent
from repro.bnb.topology import PartialTopology
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin
from repro.obs.progress import ProgressTracker, current_progress
from repro.obs.recorder import NullRecorder, as_recorder
from repro.tree.ultrametric import UltrametricTree

__all__ = ["SearchStats", "BBUResult", "BranchAndBoundSolver", "exact_mut"]

_EPS = 1e-9

#: How many loop iterations the solver lets pass between
#: ``ProgressTracker.tick`` calls when no incumbent change forces one.
#: The tracker's own time gate is authoritative; this stride only
#: bounds how often the hot loop pays the Python call (at the solver's
#: typical tens of thousands of nodes per second, 64 still checks the
#: clock hundreds of times a second, far finer than any sane
#: ``interval_seconds``).
_PROGRESS_TICK_STRIDE = 64


@dataclass
class SearchStats:
    """Counters describing one branch-and-bound run."""

    nodes_created: int = 0
    nodes_expanded: int = 0
    nodes_pruned: int = 0
    nodes_filtered_33: int = 0
    ub_updates: int = 0
    initial_upper_bound: float = 0.0
    best_cost: float = float("inf")
    elapsed_seconds: float = 0.0
    max_open_size: int = 0
    node_limit_hit: bool = False

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another run's counters (used by the pipeline).

        ``best_cost`` folds as a minimum (the best tree any merged run
        found) and ``initial_upper_bound`` as a sum over subproblems --
        dropping them (the old behaviour) made pipeline-aggregated stats
        report a ``0.0`` seed bound and an ``inf`` best cost.
        """
        self.nodes_created += other.nodes_created
        self.nodes_expanded += other.nodes_expanded
        self.nodes_pruned += other.nodes_pruned
        self.nodes_filtered_33 += other.nodes_filtered_33
        self.ub_updates += other.ub_updates
        self.initial_upper_bound += other.initial_upper_bound
        self.best_cost = min(self.best_cost, other.best_cost)
        self.elapsed_seconds += other.elapsed_seconds
        self.max_open_size = max(self.max_open_size, other.max_open_size)
        self.node_limit_hit = self.node_limit_hit or other.node_limit_hit


@dataclass
class BBUResult:
    """Outcome of a branch-and-bound run."""

    tree: UltrametricTree
    cost: float
    stats: SearchStats
    optimal: bool = True
    #: All cost-optimal trees, populated when ``collect_all`` is set.
    all_trees: List[UltrametricTree] = field(default_factory=list)


class BranchAndBoundSolver:
    """Configurable Algorithm-BBU solver.

    Parameters
    ----------
    lower_bound:
        One of ``"trivial"``, ``"minlink"``, ``"minfront"`` (default;
        the paper's bound).
    use_maxmin:
        Relabel species into max-min order first (BBU Step 1).  Turning
        this off is only useful for the ablation benchmark.
    relationship_33:
        Apply the 3-3 relationship constraint when inserting the third
        species (the parallel paper's Step 4).
    enforce_all_33:
        Generalize the constraint to every insertion.  Heuristic: may
        prune the optimum on non-ultrametric inputs.
    node_limit:
        Abort after expanding this many BBT nodes; the best tree found so
        far is returned with ``optimal=False``.
    use_kernel:
        Branch with the batched NumPy kernel
        (:class:`repro.bnb.kernel.BranchKernel`): every insertion
        position's cost and lower bound is evaluated as one array
        operation and only survivors of the bound cut are materialised.
        Decisions are bit-identical to the scalar path (the kernel
        module documents the proof), so this is purely a speed knob;
        ``False`` keeps the original per-child scalar loop, which also
        serves as the differential-test reference.  Matrices beyond the
        kernel's species limit fall back to the scalar path silently.
    collect_all:
        Also gather *every* optimal tree (within ``1e-9`` of the optimum),
        mirroring the papers' "results set".
    on_incumbent:
        Optional callback ``(cost, tree)`` fired whenever the search
        finds a strictly better complete tree — anytime progress
        reporting for long runs (the UPGMM seed is reported first).
    recorder:
        Optional :class:`repro.obs.Recorder`.  Each solve runs inside a
        ``bnb.solve`` span and emits its search counters
        (``bnb.nodes_expanded``, ``bnb.nodes_pruned``,
        ``bnb.ub_updates``, ...) plus bound-effectiveness statistics on
        completion -- the counters aggregate the run's ``SearchStats``
        once at the end, so the per-node hot loop is untouched.
    progress:
        Optional :class:`repro.obs.progress.ProgressTracker` driven from
        the inner loop (throttled incumbent/bound/gap snapshots).  When
        ``None`` the ambient :func:`repro.obs.progress.current_progress`
        tracker is used if one is bound; with neither, the hot loop pays
        a single ``is not None`` check per iteration and allocates
        nothing.
    """

    def __init__(
        self,
        *,
        lower_bound: str = "minfront",
        use_maxmin: bool = True,
        relationship_33: bool = False,
        enforce_all_33: bool = False,
        use_kernel: bool = True,
        node_limit: Optional[int] = None,
        collect_all: bool = False,
        on_incumbent: Optional[
            Callable[[float, UltrametricTree], None]
        ] = None,
        recorder: Optional[NullRecorder] = None,
        progress: Optional[ProgressTracker] = None,
    ) -> None:
        if lower_bound not in LOWER_BOUNDS:
            raise ValueError(
                f"unknown lower bound {lower_bound!r}; "
                f"choose from {sorted(LOWER_BOUNDS)}"
            )
        self.lower_bound = lower_bound
        self.use_maxmin = use_maxmin
        self.relationship_33 = relationship_33
        self.enforce_all_33 = enforce_all_33
        self.use_kernel = use_kernel
        self.node_limit = node_limit
        self.collect_all = collect_all
        self.on_incumbent = on_incumbent
        self.recorder = as_recorder(recorder)
        self.progress = progress

    # ------------------------------------------------------------------
    def solve(self, matrix: DistanceMatrix) -> BBUResult:
        """Construct a minimum ultrametric tree for ``matrix``."""
        rec = self.recorder
        if matrix.n == 0:
            raise ValueError("cannot build a tree over zero species")
        with rec.span(
            "bnb.solve", n=matrix.n, lower_bound=self.lower_bound
        ) as solve_span:
            result = self._solve(matrix)
            if rec.enabled:
                stats = result.stats
                rec.counter("bnb.nodes_created", stats.nodes_created)
                rec.counter("bnb.nodes_expanded", stats.nodes_expanded)
                rec.counter("bnb.nodes_pruned", stats.nodes_pruned)
                rec.counter("bnb.nodes_filtered_33", stats.nodes_filtered_33)
                rec.counter("bnb.ub_updates", stats.ub_updates)
                # Non-additive statistics ride on the span as attributes
                # (gauges), NOT as counters: emitted as counters, repeated
                # solves summed a maximum and summed fractions, so any
                # multi-solve profile reported nonsense.  The profile view
                # aggregates these per span name (min/mean/max).
                solve_span.attrs["bnb.max_open_size"] = stats.max_open_size
                if stats.nodes_created > 0:
                    # Bound effectiveness: fraction of generated nodes the
                    # lower bound killed, and how far the UPGMM seed was
                    # from the final optimum (0 = seed already optimal).
                    solve_span.attrs["bnb.prune_fraction"] = (
                        stats.nodes_pruned / stats.nodes_created
                    )
                if stats.initial_upper_bound > 0:
                    solve_span.attrs["bnb.seed_gap_fraction"] = (
                        stats.initial_upper_bound - result.cost
                    ) / stats.initial_upper_bound
        return result

    def _solve(self, matrix: DistanceMatrix) -> BBUResult:
        rec = self.recorder
        start = rec.clock()
        stats = SearchStats()
        # Resolved once per solve: the explicit tracker, or the ambient
        # one bound by ``progress_context`` (the scheduler / CLI path).
        tracker = self.progress
        if tracker is None:
            tracker = current_progress()
        n = matrix.n
        if n == 1:
            tree = UltrametricTree.leaf(matrix.labels[0])
            stats.best_cost = 0.0
            if tracker is not None:
                tracker.final(0.0, stats)
            return BBUResult(tree, 0.0, stats)

        if self.use_maxmin:
            ordered, _ = apply_maxmin(matrix)
        else:
            ordered = matrix
        labels = ordered.labels
        values = [list(map(float, row)) for row in ordered.values]

        if n == 2:
            tree = UltrametricTree.join(
                UltrametricTree.leaf(labels[0]),
                UltrametricTree.leaf(labels[1]),
                values[0][1] / 2.0,
            )
            cost = tree.cost()
            stats.best_cost = cost
            stats.elapsed_seconds = rec.clock() - start
            if tracker is not None:
                tracker.final(cost, stats)
            return BBUResult(tree, cost, stats)

        # Cached per matrix identity: solving the same (relabelled) matrix
        # again -- pipeline subproblems, fallbacks, repeated benchmark
        # solves -- reuses the half-matrix and tail bounds.
        half, tails = search_context(ordered, self.lower_bound)

        seed = upgmm(ordered)
        upper_bound = seed.cost()
        stats.initial_upper_bound = upper_bound
        if self.on_incumbent is not None:
            self.on_incumbent(upper_bound, seed)
        best: Optional[PartialTopology] = None
        best_complete: List[PartialTopology] = []

        root = PartialTopology.initial(half)
        root.lower_bound = root.cost + tails[2]
        open_nodes: List[PartialTopology] = [root]
        stats.nodes_created = 1
        keep_margin = _EPS if self.collect_all else -_EPS

        check_33 = self.relationship_33 or self.enforce_all_33
        kernel = BranchKernel(half) if self.use_kernel else None
        if kernel is not None and not kernel.supported:
            kernel = None  # oversized matrix: scalar fallback
        if tracker is not None:
            tracker.start()
        progress_countdown = 0
        progress_last_ub = upper_bound

        while open_nodes:
            if self.node_limit is not None and stats.nodes_expanded >= self.node_limit:
                stats.node_limit_hit = True
                break
            if tracker is not None:
                # Strided: pay the tick() call only every
                # _PROGRESS_TICK_STRIDE iterations -- or at once when
                # the incumbent moved, so min_delta gating stays prompt.
                progress_countdown -= 1
                if progress_countdown <= 0 or upper_bound != progress_last_ub:
                    tracker.tick(upper_bound, stats, open_nodes)
                    progress_countdown = _PROGRESS_TICK_STRIDE
                    progress_last_ub = upper_bound
            node = open_nodes.pop()
            if node.lower_bound > upper_bound + keep_margin:
                stats.nodes_pruned += 1
                continue
            stats.nodes_expanded += 1
            s = node.next_species
            tail = tails[s + 1]
            stats.nodes_created += node.num_positions()
            survivors, pruned = expand_positions(
                node, tail, upper_bound + keep_margin, kernel
            )
            stats.nodes_pruned += pruned
            if check_33:
                children: List[PartialTopology] = []
                for child in survivors:
                    if not insertion_is_consistent(
                        child, values, s, check_all_pairs=self.enforce_all_33
                    ):
                        stats.nodes_filtered_33 += 1
                        continue
                    children.append(child)
            else:
                children = survivors
            if node.num_leaves + 1 == n:
                for child in children:
                    cost = child.cost
                    if cost < upper_bound - _EPS:
                        upper_bound = cost
                        best = child
                        stats.ub_updates += 1
                        if self.on_incumbent is not None:
                            self.on_incumbent(cost, child.to_tree(labels))
                        if self.collect_all:
                            best_complete = [
                                t for t in best_complete
                                if t.cost <= upper_bound + _EPS
                            ]
                    if self.collect_all and cost <= upper_bound + _EPS:
                        best_complete.append(child)
                        if best is None or cost < best.cost - _EPS:
                            best = child
                    elif best is None and cost <= upper_bound + _EPS:
                        # UPGMM tree matched by search; remember topology.
                        best = child
            else:
                # Depth-first, cheapest lower bound expanded first.
                children.sort(key=lambda c: -c.lower_bound)
                open_nodes.extend(children)
                if len(open_nodes) > stats.max_open_size:
                    stats.max_open_size = len(open_nodes)

        stats.best_cost = upper_bound if best is not None else stats.initial_upper_bound
        stats.elapsed_seconds = rec.clock() - start
        if tracker is not None:
            # On a node-limit break ``open_nodes`` is non-empty, so the
            # closing snapshot reports the honest residual gap.
            tracker.final(upper_bound, stats, open_nodes)

        if best is None:
            # The UPGMM seed was never beaten (it is optimal or the node
            # limit stopped us first); return it.
            tree = seed
            cost = upper_bound
        else:
            tree = best.to_tree(labels)
            cost = best.cost
        result = BBUResult(
            tree,
            cost,
            stats,
            optimal=not stats.node_limit_hit,
        )
        if self.collect_all:
            unique = {}
            for topo in best_complete:
                if topo.cost <= cost + _EPS:
                    unique[topo.signature()] = topo
            result.all_trees = [t.to_tree(labels) for t in unique.values()]
            if not result.all_trees and best is not None:
                result.all_trees = [tree]
        return result


def exact_mut(matrix: DistanceMatrix, **solver_options) -> BBUResult:
    """One-call exact minimum ultrametric tree (convenience wrapper)."""
    return BranchAndBoundSolver(**solver_options).solve(matrix)
