"""The 3-3 relationship constraint (HPCAsia paper, Definition 11).

Fan's observation: if species ``i`` and ``j`` are strictly the closest
pair of a triple ``(i, j, k)`` in the distance matrix, a faithful tree
should make ``LCA(i, j)`` a proper descendant of
``LCA(i, k) = LCA(j, k)``.  In a binary tree the three pair-LCAs of a
triple are either all one node or exactly one lies strictly below the
other two, so the test is ``lca(i, k) == lca(j, k) != lca(i, j)``.

The HPCAsia paper applies the constraint when the *third* species enters
the tree (Step 4), shrinking the solution space while -- empirically --
still containing the optimum ("the result trees with 3-3 relationship are
a subset of result without").  We implement that, plus the generalized
mode their future-work section suggests: enforce the constraint on every
triple each newly inserted species forms with the species already placed.
Note the generalized mode is a heuristic: on non-ultrametric inputs it
may prune all optima (tests document this), which is why the paper keeps
it to the initial step.
"""

from __future__ import annotations

from typing import Sequence

from repro.bnb.topology import PartialTopology

__all__ = ["triple_is_consistent", "insertion_is_consistent"]

_TOL = 1e-12


def triple_is_consistent(
    topology: PartialTopology,
    values: Sequence[Sequence[float]],
    i: int,
    j: int,
    k: int,
) -> bool:
    """Check one placed triple against the 3-3 relationship.

    ``values`` is the full distance matrix (same species order as the
    topology).  Triples with no strictly closest pair impose nothing.
    """
    d_ij = values[i][j]
    d_ik = values[i][k]
    d_jk = values[j][k]
    # Identify the strictly closest pair, if any.
    if d_ij < d_ik - _TOL and d_ij < d_jk - _TOL:
        a, b, c = i, j, k
    elif d_ik < d_ij - _TOL and d_ik < d_jk - _TOL:
        a, b, c = i, k, j
    elif d_jk < d_ij - _TOL and d_jk < d_ik - _TOL:
        a, b, c = j, k, i
    else:
        return True
    lca_ab = topology.lca_node(a, b)
    lca_ac = topology.lca_node(a, c)
    lca_bc = topology.lca_node(b, c)
    return lca_ac == lca_bc and lca_ab != lca_ac


def insertion_is_consistent(
    topology: PartialTopology,
    values: Sequence[Sequence[float]],
    new_species: int,
    *,
    check_all_pairs: bool = False,
) -> bool:
    """Is the topology 3-3 consistent after inserting ``new_species``?

    With ``check_all_pairs`` false (the paper's usage) only the initial
    triple ``(0, 1, 2)`` is checked, and only when ``new_species == 2``.
    With it true, every pair of previously placed species is checked
    against the newcomer (the generalized constraint).
    """
    if not check_all_pairs:
        if new_species != 2:
            return True
        return triple_is_consistent(topology, values, 0, 1, 2)
    for i in range(new_species):
        for j in range(i + 1, new_species):
            if not triple_is_consistent(topology, values, i, j, new_species):
                return False
    return True
