"""Branch-and-bound construction of minimum ultrametric trees.

This package is Algorithm BBU of Wu, Chao & Tang (1999) as both papers
describe it: species are relabelled into max-min order, the root of the
branch-and-bound tree (BBT) is the unique two-leaf topology, UPGMM seeds
the upper bound, and each BBT node branches by grafting the next species
onto every edge of the current topology (plus above the root).  Lower
bounds prune; the optional 3-3 relationship constraint prunes further.
"""

from repro.bnb.topology import PartialTopology
from repro.bnb.kernel import BranchEvaluation, BranchKernel, expand_positions
from repro.bnb.bounds import (
    LOWER_BOUNDS,
    half_matrix,
    minfront_tails,
    minlink_tails,
    search_context,
)
from repro.bnb.sequential import (
    BranchAndBoundSolver,
    BBUResult,
    SearchStats,
    exact_mut,
)
from repro.bnb.relationship import triple_is_consistent
from repro.bnb.enumeration import (
    count_topologies,
    enumerate_topologies,
    brute_force_mut,
)

__all__ = [
    "PartialTopology",
    "BranchEvaluation",
    "BranchKernel",
    "expand_positions",
    "LOWER_BOUNDS",
    "half_matrix",
    "minfront_tails",
    "minlink_tails",
    "search_context",
    "BranchAndBoundSolver",
    "BBUResult",
    "SearchStats",
    "exact_mut",
    "triple_is_consistent",
    "count_topologies",
    "enumerate_topologies",
    "brute_force_mut",
]
