"""Batched branching kernel: evaluate every insertion position at once.

The scalar branching path (:meth:`PartialTopology.child`) clones eight
O(k) lists per candidate position and walks a leaf bitmask one bit at a
time to compute ``max(M[s, l] / 2 for l below node)`` -- then most of
those fully-built children are immediately pruned by the lower-bound
cut.  This module computes the cost and lower bound of **all** ``2k - 1``
children of a parent node as NumPy array operations, so the solver only
materialises :class:`PartialTopology` objects for positions that survive
the ``LB <= UB`` cut (and the 3-3 filter).

Bit-exactness
-------------
The kernel's costs are **bit-identical** to the scalar reference, not
merely close, which is what lets the solvers switch on the kernel without
perturbing a single search decision (pruning, tie-breaking and incumbent
updates all compare floats).  Two facts make this possible:

1. *The upward propagation is a running max.*  Inserting species ``s``
   above node ``c`` creates a new internal node of height
   ``h_u = max(height[c], maxhalf[c])`` where ``maxhalf[v]`` is
   ``max(M[s, l] / 2 for leaf l below v)``.  The scalar walk then sets
   each ancestor ``a`` to ``max(height[a], child_height, required)``
   with ``required`` the max half-distance over the leaves of ``a`` *not*
   below the previous level.  Because ``child_height`` already dominates
   the max half-distance over the leaves it covers (by induction from
   ``h_u >= maxhalf[c]``), that triple max equals
   ``max(child_height, g[a])`` with ``g[a] = max(height[a], maxhalf[a])``
   -- the same value, computed from per-node tables instead of bitmask
   walks.  ``max`` is exact in IEEE floats, so every propagated height is
   bit-identical to the scalar one.
2. *The additions happen in the scalar order.*  The scalar path folds
   ``internal_sum + h_u`` first, then adds each level's
   ``new_height - old_height`` bottom-up, then adds the root height.
   The kernel performs the same float operations in the same order,
   vectorised across candidates: the level loop below advances every
   candidate's walk one ancestor per iteration, so candidate ``j``'s
   partial sum sees exactly the adds the scalar code would give it.
   (A level where the height does not change contributes ``+ 0.0``,
   which is exact for the non-negative heights involved.)

The ``maxhalf`` table itself is shared by all ``2k - 1`` candidates of a
parent -- this is the "incremental across sibling branches" part: the
scalar path recomputed those maxima per child via bitmask walks; the
kernel computes the table once per expansion by unpacking the leaf
bitmasks into an ``(m, n)`` boolean matrix and reducing along species.

Leaf bitmasks are unpacked through ``uint64``, so the batched path
supports ``n <= 62`` species (far beyond exact-search reach anyway);
:attr:`BranchKernel.supported` is ``False`` above that and callers fall
back to the scalar loop.

:func:`expand_positions` is the shared driver used by the sequential
solver, the cluster simulator and the multiprocess engine: one place
implements "children of ``node`` whose lower bound clears ``threshold``"
for both the batched and the scalar path, so the engines cannot drift.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bnb.topology import PartialTopology

__all__ = ["BranchEvaluation", "BranchKernel", "expand_positions"]

#: Leaf bitmasks are unpacked through uint64; one bit per species.
MAX_BATCH_SPECIES = 62


class BranchEvaluation:
    """Per-position arrays for one parent expansion.

    ``costs[p]`` / ``lower_bounds[p]`` are the cost and lower bound the
    child grafted at position ``p`` would have -- bit-identical to
    ``parent.child(p, tail).cost`` / ``.lower_bound``.  ``g[v]`` is the
    per-node propagation table ``max(height[v], maxhalf[v])`` that
    :meth:`PartialTopology.child_via_tables` consumes to materialise a
    surviving child without bitmask walks.
    """

    __slots__ = ("species", "costs", "lower_bounds", "g")

    def __init__(
        self,
        species: int,
        costs: np.ndarray,
        lower_bounds: np.ndarray,
        g: np.ndarray,
    ) -> None:
        self.species = species
        self.costs = costs
        self.lower_bounds = lower_bounds
        self.g = g


class BranchKernel:
    """Vectorised branching over a shared ``M / 2`` matrix.

    One kernel is built per solve (the half matrix is per-solve state)
    and reused across every expansion; :meth:`evaluate` allocates only
    per-expansion arrays.
    """

    __slots__ = ("half", "n", "half_np", "supported", "_bits")

    def __init__(self, half: Sequence[Sequence[float]]) -> None:
        self.half = half
        self.n = len(half)
        self.supported = 2 <= self.n <= MAX_BATCH_SPECIES
        self.half_np = (
            np.asarray(half, dtype=np.float64) if self.supported else None
        )
        #: Cached bit positions for the leafset unpack (one per species).
        self._bits = (
            np.arange(self.n, dtype=np.uint64) if self.supported else None
        )

    # ------------------------------------------------------------------
    def _tables(
        self, topo: PartialTopology
    ) -> Tuple[int, int, np.ndarray, np.ndarray]:
        """``(s, m, heights, g)`` for one expansion of ``topo``.

        ``g[v] = max(height[v], maxhalf[v])`` with ``maxhalf[v]`` the
        half-distance from the incoming species ``s`` to the leaves below
        ``v`` -- computed for every node at once by unpacking the per-node
        leaf bitmasks into an ``(m, n)`` matrix and reducing the species'
        half-distance row over it.  Heights and half-distances are
        non-negative, so 0.0 is a neutral element for the max.
        """
        s = topo.next_species
        if s >= topo.n:
            raise ValueError("topology is already complete")
        m = len(topo.parent)
        heights = np.fromiter(topo.height, dtype=np.float64, count=m)
        leafsets = np.array(topo.leafset, dtype=np.uint64)
        below = (leafsets[:, None] >> self._bits[None, :]) & np.uint64(1)
        maxhalf = np.where(below, self.half_np[s][None, :], 0.0).max(axis=1)
        g = np.maximum(heights, maxhalf)
        return s, m, heights, g

    def evaluate(
        self,
        topo: PartialTopology,
        lower_tail: float = 0.0,
        threshold: Optional[float] = None,
    ) -> BranchEvaluation:
        """Costs and lower bounds of every child of ``topo`` at once.

        With ``threshold=None`` every position's cost is exact.  With a
        ``threshold`` (the solver's ``UB`` cut), positions whose *cheap
        screening bound* already exceeds it are reported as ``+inf``
        instead of their exact value -- they are provably above the
        threshold either way, so the caller's keep/prune decisions are
        unchanged, and the expensive upward walk only runs for the few
        positions that might survive.  The screen is sound because a
        child's cost is at least ``internal_sum + g[c]`` (the new node's
        own height) plus a final root height of at least
        ``max(g[c], height[root])``; a small absolute+relative margin
        keeps float rounding from ever screening out a position the
        exact walk would keep.
        """
        if not self.supported:
            raise ValueError(
                f"batched branching supports at most {MAX_BATCH_SPECIES} "
                f"species (got {self.n}); use the scalar path"
            )
        s, m, heights, g = self._tables(topo)
        internal_sum = topo.internal_sum

        # For candidate position c the new internal node's height is
        # h_u = max(height[c], maxhalf[c]) = g[c]; the scalar path then
        # adds it to internal_sum before walking upward.
        partial = internal_sum + g

        if threshold is not None:
            h_root = topo.height[topo.root]
            screen = partial + np.maximum(g, h_root) + lower_tail
            margin = 1e-6 * (1.0 + abs(threshold))
            kept = np.nonzero(screen <= threshold + margin)[0]
            costs = np.full(m, np.inf)
            lower_bounds = np.full(m, np.inf)
            if kept.size:
                # Exact per-lane walk, in the reference float-op order
                # (see module docstring): Python floats and numpy float64
                # share IEEE double semantics, so max / + / - here are
                # bit-identical to the vectorised exact path below.
                g_list = g.tolist()
                par_list = topo.parent
                h_list = topo.height
                for c in kept.tolist():
                    h_u = g_list[c]
                    partial_c = internal_sum + h_u
                    cur_h = h_u
                    cur = par_list[c]
                    while cur >= 0:
                        g_cur = g_list[cur]
                        new_h = cur_h if cur_h >= g_cur else g_cur
                        partial_c += new_h - h_list[cur]
                        cur_h = new_h
                        cur = par_list[cur]
                    cost = partial_c + cur_h
                    costs[c] = cost
                    lower_bounds[c] = cost + lower_tail
            return BranchEvaluation(s, costs, lower_bounds, g)

        # Exact mode: walk every candidate's ancestor path in lockstep,
        # one level per iteration: cur[j] is candidate j's current
        # ancestor (or -1 once its walk passed the root), cur_h[j] the
        # propagated height below it.  Candidates inserting at the root
        # never enter the loop and keep cur_h = g[root] = h_u, matching
        # the scalar special case.
        par = np.fromiter(topo.parent, dtype=np.int64, count=m)
        cur_h = g.copy()
        cur = par.copy()
        while True:
            active = cur >= 0
            if not active.any():
                break
            a = np.where(active, cur, 0)
            new_h = np.maximum(cur_h, g[a])
            partial = partial + np.where(active, new_h - heights[a], 0.0)
            cur_h = np.where(active, new_h, cur_h)
            cur = np.where(active, par[a], np.int64(-1))

        # cost = new internal_sum + new root height; LB = cost + tail.
        costs = partial + cur_h
        lower_bounds = costs + lower_tail
        return BranchEvaluation(s, costs, lower_bounds, g)


def expand_positions(
    node: PartialTopology,
    lower_tail: float,
    threshold: float,
    kernel: Optional[BranchKernel] = None,
) -> Tuple[List[PartialTopology], int]:
    """Children of ``node`` whose lower bound does not exceed ``threshold``.

    Returns ``(children, pruned)`` with ``children`` in position order
    (preserving the engines' tie-breaking) and ``pruned`` the number of
    positions cut by the bound.  With a usable ``kernel`` the bound test
    runs on the batched arrays and only survivors are materialised (via
    :meth:`PartialTopology.child_via_tables`); otherwise every child is
    built with the scalar :meth:`PartialTopology.child` reference.  Both
    paths make bit-identical decisions.
    """
    children: List[PartialTopology] = []
    pruned = 0
    if kernel is not None and kernel.supported:
        evaluation = kernel.evaluate(node, lower_tail, threshold)
        lower_bounds = evaluation.lower_bounds
        g = evaluation.g
        for position in range(len(node.parent)):
            if lower_bounds[position] > threshold:
                pruned += 1
                continue
            children.append(node.child_via_tables(position, g, lower_tail))
        return children, pruned
    for position in range(len(node.parent)):
        child = node.child(position, lower_tail)
        if child.lower_bound > threshold:
            pruned += 1
            continue
        children.append(child)
    return children, pruned
