"""Partial tree topologies for the branch-and-bound search.

A node of the branch-and-bound tree (BBT) is a *partial topology*: a
binary ultrametric tree over the first ``k`` species (in max-min order)
realised at minimal cost.  Branching grafts species ``k`` onto one of the
``2k - 1`` positions of the current tree -- every edge plus "above the
root" -- which generates the ``(2n - 3)!!`` topologies the papers count
(``A(20) > 10^21`` ...).

The implementation is flat-array based for speed: parallel lists for
parent/children/height, and a *bitmask* per node recording which species
sit below it, so the height constraints a new species imposes
(``height(LCA(new, old)) >= M[new, old] / 2``) can be pushed up the
insertion path in one walk.  The minimal-cost realization invariant is
maintained incrementally:

    height(v) = max(height(children), max{ M[i, j] / 2 : LCA(i, j) = v })
    omega(T)  = height(root) + sum of internal heights
"""

from __future__ import annotations

from typing import List, Sequence

from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["PartialTopology"]

_NO_NODE = -1


class PartialTopology:
    """A minimal-cost ultrametric realization of a partial leaf topology.

    Instances are created by :meth:`initial` (the two-leaf BBT root) and
    :meth:`child` (graft the next species); they should be treated as
    immutable once created.  ``half`` is the shared ``M / 2`` matrix as a
    list of row lists, indexed by species id after max-min relabeling.
    """

    __slots__ = (
        "half",
        "n",
        "num_leaves",
        "parent",
        "child_a",
        "child_b",
        "height",
        "leafset",
        "species",
        "leaf_of",
        "root",
        "internal_sum",
        "lower_bound",
    )

    def __init__(self) -> None:
        # Populated by the factory methods; never built directly.
        self.half: List[List[float]] = []
        self.n = 0
        self.num_leaves = 0
        self.parent: List[int] = []
        self.child_a: List[int] = []
        self.child_b: List[int] = []
        self.height: List[float] = []
        self.leafset: List[int] = []
        self.species: List[int] = []
        self.leaf_of: List[int] = []
        self.root = _NO_NODE
        self.internal_sum = 0.0
        self.lower_bound = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, half: Sequence[Sequence[float]]) -> "PartialTopology":
        """The BBT root: the unique topology over species 0 and 1."""
        n = len(half)
        if n < 2:
            raise ValueError("a partial topology needs at least two species")
        topo = cls()
        # Shared by reference: ``half`` is read-only search-context state
        # (see :func:`repro.bnb.bounds.search_context`); copying it here
        # was O(n^2) waste per solve.
        topo.half = half
        topo.n = n
        topo.num_leaves = 2
        h = float(half[0][1])
        # node 0 = leaf(species 0), node 1 = leaf(species 1), node 2 = root
        topo.parent = [2, 2, _NO_NODE]
        topo.child_a = [_NO_NODE, _NO_NODE, 0]
        topo.child_b = [_NO_NODE, _NO_NODE, 1]
        topo.height = [0.0, 0.0, h]
        topo.leafset = [1, 2, 3]
        topo.species = [0, 1, _NO_NODE]
        topo.leaf_of = [0, 1] + [_NO_NODE] * (n - 2)
        topo.root = 2
        topo.internal_sum = h
        topo.lower_bound = 0.0
        return topo

    # ------------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        """All ``n`` species placed?"""
        return self.num_leaves == self.n

    @property
    def next_species(self) -> int:
        """The species the next branching step inserts."""
        return self.num_leaves

    @property
    def cost(self) -> float:
        """Minimal ultrametric cost of this (partial) topology."""
        return self.internal_sum + self.height[self.root]

    def num_positions(self) -> int:
        """Number of graft positions: ``2k - 1`` for ``k`` leaves."""
        return 2 * self.num_leaves - 1

    # ------------------------------------------------------------------
    def _max_half_distance(self, species: int, mask: int) -> float:
        """``max{ M[species, l] / 2 : l in mask }`` (0 for empty mask)."""
        row = self.half[species]
        best = 0.0
        while mask:
            low = mask & -mask
            d = row[low.bit_length() - 1]
            if d > best:
                best = d
            mask ^= low
        return best

    def child(self, position: int, lower_tail: float = 0.0) -> "PartialTopology":
        """Graft the next species at ``position`` and return the new node.

        ``position`` indexes an existing tree node ``c``: the new species
        is inserted on the edge above ``c`` (a new internal node adopts
        ``c`` and the new leaf); when ``c`` is the root the new internal
        node becomes the new root.  ``lower_tail`` is the precomputed
        lower-bound completion for the *remaining* species (see
        :mod:`repro.bnb.bounds`); the child's ``lower_bound`` is set to
        ``cost + lower_tail``.
        """
        s = self.next_species
        if s >= self.n:
            raise ValueError("topology is already complete")
        c = position
        if not 0 <= c < len(self.parent):
            raise ValueError(f"position {position} out of range")

        clone = PartialTopology()
        clone.half = self.half
        clone.n = self.n
        clone.num_leaves = self.num_leaves + 1
        clone.parent = list(self.parent)
        clone.child_a = list(self.child_a)
        clone.child_b = list(self.child_b)
        clone.height = list(self.height)
        clone.leafset = list(self.leafset)
        clone.species = list(self.species)
        clone.leaf_of = list(self.leaf_of)
        clone.root = self.root
        clone.internal_sum = self.internal_sum

        bit = 1 << s
        leaf_idx = len(clone.parent)
        internal_idx = leaf_idx + 1

        # New leaf node for species s.
        clone.parent.append(internal_idx)
        clone.child_a.append(_NO_NODE)
        clone.child_b.append(_NO_NODE)
        clone.height.append(0.0)
        clone.leafset.append(bit)
        clone.species.append(s)
        clone.leaf_of[s] = leaf_idx

        # New internal node u adopting c and the new leaf.
        old_mask_c = clone.leafset[c]
        h_u = max(clone.height[c], self._max_half_distance(s, old_mask_c))
        clone.parent.append(clone.parent[c])
        clone.child_a.append(c)
        clone.child_b.append(leaf_idx)
        clone.height.append(h_u)
        clone.leafset.append(old_mask_c | bit)
        clone.species.append(_NO_NODE)
        clone.internal_sum += h_u

        p = clone.parent[c]
        clone.parent[c] = internal_idx
        if p == _NO_NODE:
            clone.root = internal_idx
        else:
            if clone.child_a[p] == c:
                clone.child_a[p] = internal_idx
            else:
                clone.child_b[p] = internal_idx
            # Push the new species' constraints up the path to the root.
            below_mask = old_mask_c  # leaves already charged to h_u
            child_height = h_u
            node = p
            while node != _NO_NODE:
                other = clone.leafset[node] & ~below_mask
                required = self._max_half_distance(s, other)
                new_height = clone.height[node]
                if child_height > new_height:
                    new_height = child_height
                if required > new_height:
                    new_height = required
                if new_height != clone.height[node]:
                    clone.internal_sum += new_height - clone.height[node]
                    clone.height[node] = new_height
                below_mask = clone.leafset[node]
                clone.leafset[node] |= bit
                child_height = clone.height[node]
                node = clone.parent[node]

        clone.lower_bound = clone.cost + lower_tail
        return clone

    def child_via_tables(
        self, position: int, g: Sequence[float], lower_tail: float = 0.0
    ) -> "PartialTopology":
        """Graft the next species at ``position`` using kernel tables.

        ``g`` is the per-node propagation table from
        :meth:`repro.bnb.kernel.BranchKernel.evaluate`:
        ``g[v] = max(height[v], max(M[s, l] / 2 for leaf l below v))``
        for the species ``s`` being inserted.  The result is field-for-
        field identical to :meth:`child` (heights bit-exact; see the
        kernel module docstring for the proof), but each ancestor step is
        O(1) instead of a bitmask walk -- the table already holds every
        max-half-distance the walk would recompute.
        """
        s = self.next_species
        if s >= self.n:
            raise ValueError("topology is already complete")
        c = position
        if not 0 <= c < len(self.parent):
            raise ValueError(f"position {position} out of range")

        clone = PartialTopology()
        clone.half = self.half
        clone.n = self.n
        clone.num_leaves = self.num_leaves + 1
        clone.parent = list(self.parent)
        clone.child_a = list(self.child_a)
        clone.child_b = list(self.child_b)
        clone.height = list(self.height)
        clone.leafset = list(self.leafset)
        clone.species = list(self.species)
        clone.leaf_of = list(self.leaf_of)
        clone.root = self.root
        clone.internal_sum = self.internal_sum

        bit = 1 << s
        leaf_idx = len(clone.parent)
        internal_idx = leaf_idx + 1

        clone.parent.append(internal_idx)
        clone.child_a.append(_NO_NODE)
        clone.child_b.append(_NO_NODE)
        clone.height.append(0.0)
        clone.leafset.append(bit)
        clone.species.append(s)
        clone.leaf_of[s] = leaf_idx

        # h_u = max(height[c], maxhalf[c]) = g[c].
        h_u = float(g[c])
        clone.parent.append(clone.parent[c])
        clone.child_a.append(c)
        clone.child_b.append(leaf_idx)
        clone.height.append(h_u)
        clone.leafset.append(clone.leafset[c] | bit)
        clone.species.append(_NO_NODE)
        clone.internal_sum += h_u

        p = clone.parent[c]
        clone.parent[c] = internal_idx
        if p == _NO_NODE:
            clone.root = internal_idx
        else:
            if clone.child_a[p] == c:
                clone.child_a[p] = internal_idx
            else:
                clone.child_b[p] = internal_idx
            child_height = h_u
            node = p
            while node != _NO_NODE:
                # max(old, child, required-over-other) == max(child, g)
                # because child_height covers the leaves g's max adds.
                new_height = float(g[node])
                if child_height > new_height:
                    new_height = child_height
                if new_height != clone.height[node]:
                    clone.internal_sum += new_height - clone.height[node]
                    clone.height[node] = new_height
                clone.leafset[node] |= bit
                child_height = new_height
                node = clone.parent[node]

        clone.lower_bound = clone.cost + lower_tail
        return clone

    # ------------------------------------------------------------------
    def to_payload(self) -> tuple:
        """Compact picklable state *excluding* the shared ``half`` matrix.

        Workers and the master both hold ``half`` already, so shipping a
        topology across a process boundary only needs the flat arrays.
        Heights travel as native floats (bit-exact through pickle), which
        is what lets the multiprocess engine assert the re-materialised
        tree's cost equals the reported cost to 1e-9.
        """
        return (
            self.n,
            self.num_leaves,
            list(self.parent),
            list(self.child_a),
            list(self.child_b),
            list(self.height),
            list(self.leafset),
            list(self.species),
            list(self.leaf_of),
            self.root,
            self.internal_sum,
            self.lower_bound,
        )

    @classmethod
    def from_payload(
        cls, payload: tuple, half: Sequence[Sequence[float]]
    ) -> "PartialTopology":
        """Rebuild a topology from :meth:`to_payload` plus the shared
        ``M / 2`` matrix (inverse of :meth:`to_payload`, bit-exact)."""
        topo = cls()
        (
            topo.n,
            topo.num_leaves,
            topo.parent,
            topo.child_a,
            topo.child_b,
            topo.height,
            topo.leafset,
            topo.species,
            topo.leaf_of,
            topo.root,
            topo.internal_sum,
            topo.lower_bound,
        ) = payload
        # Shared by reference, like :meth:`initial`: the multiprocess
        # master re-materialises one payload per worker result, and each
        # deep copy of ``half`` was O(n^2) for no benefit -- the matrix
        # is read-only throughout the search.
        topo.half = half
        return topo

    # ------------------------------------------------------------------
    def lca_node(self, species_a: int, species_b: int) -> int:
        """Index of the LCA node of two *placed* species."""
        leaf = self.leaf_of[species_a]
        if leaf == _NO_NODE or self.leaf_of[species_b] == _NO_NODE:
            raise ValueError("both species must be placed")
        bit = 1 << species_b
        node = leaf
        while not self.leafset[node] & bit:
            node = self.parent[node]
            if node == _NO_NODE:  # pragma: no cover - leaves share a root
                raise RuntimeError("species not connected")
        return node

    def lca_height(self, species_a: int, species_b: int) -> float:
        """Height of the LCA of two placed species."""
        return self.height[self.lca_node(species_a, species_b)]

    # ------------------------------------------------------------------
    def to_tree(self, labels: Sequence[str]) -> UltrametricTree:
        """Materialise as an :class:`UltrametricTree` with species names."""

        def build(index: int) -> TreeNode:
            if self.species[index] != _NO_NODE:
                return TreeNode(0.0, label=labels[self.species[index]])
            return TreeNode(
                self.height[index],
                [build(self.child_a[index]), build(self.child_b[index])],
            )

        return UltrametricTree(build(self.root))

    def signature(self) -> tuple:
        """A hashable canonical form of the topology (tests/dedup).

        Each subtree maps to a sorted tuple of its children signatures,
        so two topologies over the same species compare equal exactly when
        they are the same unordered tree.
        """

        def sig(index: int):
            if self.species[index] != _NO_NODE:
                return self.species[index]
            a = sig(self.child_a[index])
            b = sig(self.child_b[index])
            return (a, b) if repr(a) <= repr(b) else (b, a)

        return sig(self.root)

    def __repr__(self) -> str:
        return (
            f"PartialTopology(k={self.num_leaves}/{self.n}, "
            f"cost={self.cost:.4g}, lb={self.lower_bound:.4g})"
        )
