"""Lower bounds for the branch-and-bound search.

For a BBT node ``v`` whose partial topology places the first ``k``
species (max-min order), any complete ultrametric tree below ``v`` costs
at least

    LB(v) = omega(T_v) + tail(k)

where ``tail(k)`` charges every still-unplaced species for the pendant
edge it must eventually contribute.  Peeling leaves off a complete tree in
reverse insertion order shows that species ``j`` contributes an edge of
length at least ``min_{i < j} M[i, j] / 2`` (its sibling subtree at
removal time only contains earlier species), giving the *minfront* tail --
the bound of Wu, Chao & Tang that both papers use.  Two weaker tails are
provided for the ablation study:

* ``trivial``  -- ``tail = 0`` (prune on realised cost only);
* ``minlink``  -- charge ``min_{l != j} M[j, l] / 2`` (valid but smaller);
* ``minfront`` -- the paper's bound (default).
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = [
    "half_matrix",
    "trivial_tails",
    "minlink_tails",
    "minfront_tails",
    "LOWER_BOUNDS",
    "search_context",
]


def half_matrix(matrix: DistanceMatrix) -> List[List[float]]:
    """``M / 2`` as plain row lists (fast scalar access in the hot loop)."""
    return (matrix.values * 0.5).tolist()


def trivial_tails(matrix: DistanceMatrix) -> List[float]:
    """``tail(k) = 0`` for every level: no look-ahead at all."""
    return [0.0] * (matrix.n + 1)


def _suffix_sums(per_species: Sequence[float], n: int) -> List[float]:
    tails = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        tails[k] = tails[k + 1] + per_species[k]
    return tails


def minlink_tails(matrix: DistanceMatrix) -> List[float]:
    """Charge each unplaced species half its minimum link to *anyone*.

    ``tail(k) = sum_{j >= k} min_{l != j} M[j, l] / 2``.  Valid because a
    leaf's pendant edge is at least half its distance to some other leaf;
    weaker than :func:`minfront_tails` because the minimum ranges over all
    species instead of only the earlier ones.
    """
    n = matrix.n
    if n < 2:
        return [0.0] * (n + 1)
    masked = matrix.values.astype(float, copy=True)
    np.fill_diagonal(masked, np.inf)
    per = (masked.min(axis=1) / 2.0).tolist()
    # Species 0 and 1 are part of the initial topology; their pendant
    # edges are already inside omega(T_v) at every level >= 2, and tails
    # are only ever read at levels >= 2, so per-species values for 0 and 1
    # never contribute.  Keep them anyway for completeness of tail(0..1).
    return _suffix_sums(per, n)


def minfront_tails(matrix: DistanceMatrix) -> List[float]:
    """The Wu-Chao-Tang bound: charge half the min distance to earlier species.

    ``tail(k) = sum_{j >= k} min_{i < j} M[i, j] / 2`` with the ``j = 0``
    term defined as 0.  Requires the matrix to already be in the insertion
    (max-min) order the solver will use.
    """
    n = matrix.n
    per = [0.0] * n
    if n > 1:
        # Column-wise prefix minima: acc[j - 1, j] = min_{i < j} M[i, j].
        acc = np.minimum.accumulate(matrix.values, axis=0)
        per[1:] = (np.diagonal(acc, offset=1) / 2.0).tolist()
    return _suffix_sums(per, n)


#: Registry used by the solver and the bound ablation benchmark.
LOWER_BOUNDS: Dict[str, Callable[[DistanceMatrix], List[float]]] = {
    "trivial": trivial_tails,
    "minlink": minlink_tails,
    "minfront": minfront_tails,
}


# ---------------------------------------------------------------------------
# Per-matrix search-context cache
# ---------------------------------------------------------------------------
#: ``matrix -> {"half": rows, "tails": {bound_name: tails}}`` keyed by the
#: *identity* of the DistanceMatrix object (its ``__hash__`` is ``id``-based
#: and entries die with the matrix thanks to the weak keys).  The sequential
#: solver, the cluster simulator and the multiprocess engine all solve the
#: same relabelled matrix object -- often several times per pipeline run
#: (UPGMM seeding, fallbacks, repeated solves in benchmarks) -- so caching
#: ``half_matrix``/tail vectors here removes every redundant recompute.
_CONTEXT_CACHE: "weakref.WeakKeyDictionary[DistanceMatrix, Dict]" = (
    weakref.WeakKeyDictionary()
)

#: The pipeline solves independent subproblems from worker threads, so the
#: cache itself needs guarding (WeakKeyDictionary mutation is not atomic).
#: Computing inside the lock is fine: half/tail construction is a handful of
#: numpy ops, and serialising it keeps the "same list objects on repeat
#: calls" contract even under races.
_CONTEXT_LOCK = threading.Lock()


def search_context(
    matrix: DistanceMatrix, lower_bound: str = "minfront"
) -> Tuple[List[List[float]], List[float]]:
    """``(half_matrix, tails)`` for ``matrix``, cached by matrix identity.

    ``lower_bound`` names an entry of :data:`LOWER_BOUNDS`.  Repeated
    calls with the same matrix object return the *same* list objects;
    callers must treat them as read-only (every current consumer does --
    :class:`~repro.bnb.topology.PartialTopology` only reads ``half``).
    """
    if lower_bound not in LOWER_BOUNDS:
        raise ValueError(
            f"unknown lower bound {lower_bound!r}; "
            f"choose from {sorted(LOWER_BOUNDS)}"
        )
    with _CONTEXT_LOCK:
        entry = _CONTEXT_CACHE.get(matrix)
        if entry is None:
            entry = {"half": half_matrix(matrix), "tails": {}}
            _CONTEXT_CACHE[matrix] = entry
        tails = entry["tails"].get(lower_bound)
        if tails is None:
            tails = LOWER_BOUNDS[lower_bound](matrix)
            entry["tails"][lower_bound] = tails
        return entry["half"], tails
