"""Exhaustive topology enumeration.

The papers motivate branch-and-bound with the size of the search space:
``A(n) = (2n - 3)!!`` rooted leaf-labelled binary topologies
(``A(20) > 10^21``, ``A(25) > 10^29``, ``A(30) > 10^37``).  This module
provides that count, a generator over every complete topology (the
test-suite oracle for small ``n``), and a brute-force minimum
ultrametric tree solver used to certify the branch-and-bound results.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.bnb.bounds import half_matrix
from repro.bnb.topology import PartialTopology
from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import UltrametricTree

__all__ = [
    "count_topologies",
    "enumerate_topologies",
    "brute_force_mut",
]

#: Refuse to enumerate beyond this many species (A(12) is ~13.7 billion;
#: even A(10) = 34,459,425 takes minutes in pure Python).
_ENUMERATION_LIMIT = 10


def count_topologies(n: int) -> int:
    """``A(n) = (2n - 3)!!``, the number of rooted binary topologies.

    ``A(1) = A(2) = 1``; every added species multiplies by the number of
    graft positions ``2k - 1``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    total = 1
    for k in range(2, n):
        total *= 2 * k - 1
    return total


def enumerate_topologies(
    matrix: DistanceMatrix, *, limit: int = _ENUMERATION_LIMIT
) -> Iterator[PartialTopology]:
    """Yield every complete topology over ``matrix``'s species.

    Each yielded :class:`PartialTopology` carries its minimal-cost
    realization, so ``topology.cost`` is the cheapest feasible
    ultrametric tree with that shape.  Raises ``ValueError`` beyond
    ``limit`` species -- the space is ``(2n - 3)!!``.
    """
    n = matrix.n
    if n > limit:
        raise ValueError(
            f"refusing to enumerate {count_topologies(n)} topologies "
            f"for {n} species (limit {limit})"
        )
    if n < 2:
        raise ValueError("enumeration needs at least two species")
    stack: List[PartialTopology] = [PartialTopology.initial(half_matrix(matrix))]
    while stack:
        topology = stack.pop()
        if topology.is_complete:
            yield topology
            continue
        for position in range(len(topology.parent)):
            stack.append(topology.child(position))


def brute_force_mut(
    matrix: DistanceMatrix, *, limit: int = _ENUMERATION_LIMIT
) -> Tuple[UltrametricTree, float]:
    """The certified minimum ultrametric tree, by exhaustive search.

    Returns ``(tree, cost)``.  Exponential -- intended as a test oracle
    for small instances, not a production solver.
    """
    if matrix.n == 1:
        return UltrametricTree.leaf(matrix.labels[0]), 0.0
    best: PartialTopology = None  # type: ignore[assignment]
    for topology in enumerate_topologies(matrix, limit=limit):
        if best is None or topology.cost < best.cost:
            best = topology
    return best.to_tree(matrix.labels), best.cost
