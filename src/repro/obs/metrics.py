"""Live metrics: counters, gauges and fixed-bucket histograms.

The :class:`~repro.obs.recorder.Recorder` answers "what happened during
*this* run" -- a complete event log, bounded only by the run's length.
A long-lived ``repro-mut serve`` process needs the complementary shape:
**aggregates** whose memory is bounded by the number of distinct metric
series, not by traffic.  :class:`MetricsRegistry` provides exactly that:

* **counters** -- monotone tallies (``cache.miss``, ``queue.rejected``);
* **gauges** -- point-in-time values, either set explicitly or computed
  at scrape time from a callback (queue depth, in-flight jobs);
* **histograms** -- fixed-bucket latency distributions
  (``service.job.seconds``, ``solve.seconds``) with Prometheus-style
  cumulative ``le`` buckets.

Design constraints, mirroring the recorder's:

1. **Bounded label cardinality.**  Each metric holds at most
   ``max_series_per_metric`` distinct label combinations; further
   combinations collapse into a reserved ``"_other_"`` series instead of
   growing without bound when a caller labels by something unbounded.
2. **Lock-protected.**  One registry is shared by every scheduler
   worker thread and every HTTP handler thread; all mutation happens
   under a single re-entrant lock.
3. **Allocation-free when unused.**  The registry allocates per-series
   state lazily on first observation, and :data:`NULL_METRICS` is a
   shared no-op registry for callers that want metrics off entirely
   (e.g. the benchmark's overhead baseline).

Rendering: :meth:`MetricsRegistry.render_prometheus` emits the text
exposition format (``GET /metrics``), :meth:`MetricsRegistry.snapshot`
a JSON view (``GET /stats``).  Metric names use dotted form internally
(``service.job.seconds``) and are mangled to Prometheus conventions on
render (``service_job_seconds``; counters gain ``_total``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
    "Counter",
    "ForwardingMetricsRegistry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "REGISTRY",
    "as_metrics",
    "prometheus_name",
    "replay_metric_ops",
]

#: Default histogram buckets, in seconds.  Chosen for the serving layer's
#: range: warm cache hits are sub-millisecond, cold exact solves seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Label value that absorbs observations beyond the per-metric series cap.
OVERFLOW_LABEL = "_other_"

_LabelKey = Tuple[str, ...]


def prometheus_name(name: str) -> str:
    """Mangle a dotted metric name to Prometheus conventions."""
    return name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labelnames: Sequence[str], values: _LabelKey) -> str:
    if not labelnames:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + parts + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared plumbing: named series keyed by a tuple of label values.

    ``_series`` maps the label-value tuple to instrument-specific state;
    everything is guarded by the owning registry's lock.  The cardinality
    bound lives here: the first label combination past the cap is
    redirected to the all-``"_other_"`` overflow series and counted on
    the registry, so runaway labels degrade (one coarse series) instead
    of leaking.
    """

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002 - mirrors prometheus_client's API
        labelnames: Sequence[str],
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = registry._lock
        self._series: Dict[_LabelKey, object] = {}

    def _key(self, labels: Mapping[str, object]) -> _LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        if key not in self._series and len(self._series) >= (
            self._registry.max_series_per_metric
        ):
            overflow = (OVERFLOW_LABEL,) * len(self.labelnames)
            if key != overflow:
                self._registry._overflowed += 1
                key = overflow
        return key

    def _new_state(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _state(self, labels: Mapping[str, object]) -> object:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = self._new_state()
        return state


class Counter(_Instrument):
    """Monotonically increasing tally."""

    kind = "counter"

    def _new_state(self) -> List[float]:
        return [0.0]

    def inc(self, value: float = 1, **labels) -> None:
        if value < 0:
            raise ValueError(f"counters only go up; got {value!r}")
        with self._lock:
            self._state(labels)[0] += value

    def value(self, **labels) -> float:
        with self._lock:
            state = self._series.get(self._key(labels))
            return state[0] if state is not None else 0.0


class Gauge(_Instrument):
    """Point-in-time value: set directly, or computed at scrape time."""

    kind = "gauge"

    def _new_state(self) -> List[object]:
        # [value, callback]; the callback (when set) wins at read time.
        return [0.0, None]

    def set(self, value: float, **labels) -> None:
        with self._lock:
            state = self._state(labels)
            state[0] = float(value)
            state[1] = None

    def inc(self, value: float = 1, **labels) -> None:
        with self._lock:
            self._state(labels)[0] += value

    def dec(self, value: float = 1, **labels) -> None:
        self.inc(-value, **labels)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Evaluate ``fn`` at every scrape instead of storing a value.

        The natural fit for derived quantities (queue depth, in-flight
        count) that already live in some data structure; the gauge then
        can never go stale.  Exceptions from ``fn`` read as 0.
        """
        with self._lock:
            self._state(labels)[1] = fn

    @staticmethod
    def _read(state: List[object]) -> float:
        fn = state[1]
        if fn is None:
            return float(state[0])  # type: ignore[arg-type]
        try:
            return float(fn())  # type: ignore[operator]
        except Exception:
            return 0.0

    def value(self, **labels) -> float:
        with self._lock:
            state = self._series.get(self._key(labels))
            return self._read(state) if state is not None else 0.0


class Histogram(_Instrument):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    always exists.  A bound is *inclusive*: ``observe(0.01)`` lands in
    the ``le="0.01"`` bucket.  Per-series state is one count per bucket
    plus running sum and count -- O(len(buckets)), independent of the
    number of observations.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds

    def _new_state(self) -> Dict[str, object]:
        return {
            "counts": [0] * (len(self.buckets) + 1),  # + the +Inf bucket
            "sum": 0.0,
            "count": 0,
        }

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        with self._lock:
            state = self._state(labels)
            index = bisect_left(self.buckets, value)
            state["counts"][index] += 1  # type: ignore[index]
            state["sum"] += value  # type: ignore[operator]
            state["count"] += 1  # type: ignore[operator]

    def count(self, **labels) -> int:
        with self._lock:
            state = self._series.get(self._key(labels))
            return int(state["count"]) if state is not None else 0

    def sum(self, **labels) -> float:
        with self._lock:
            state = self._series.get(self._key(labels))
            return float(state["sum"]) if state is not None else 0.0

    def bucket_counts(self, **labels) -> Dict[str, int]:
        """Cumulative ``le -> count`` map (as rendered to Prometheus)."""
        with self._lock:
            state = self._series.get(self._key(labels))
            raw = (
                list(state["counts"]) if state is not None
                else [0] * (len(self.buckets) + 1)
            )
        result: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, raw):
            running += n
            result[_format_value(bound)] = running
        result["+Inf"] = running + raw[-1]
        return result


class MetricsRegistry:
    """A named set of instruments sharing one lock and one budget.

    Instruments are created idempotently: asking for an existing name
    returns the existing instrument (so modules can declare their
    metrics at use sites without coordinating), but re-declaring a name
    with a different type or label set raises -- that is always a bug.
    """

    enabled = True

    def __init__(self, *, max_series_per_metric: int = 64) -> None:
        if max_series_per_metric < 1:
            raise ValueError("max_series_per_metric must be >= 1")
        self.max_series_per_metric = max_series_per_metric
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Instrument] = {}
        self._overflowed = 0

    # ------------------------------------------------------------------
    # instrument registration
    # ------------------------------------------------------------------
    def _register(self, cls, name, help, labelnames, **kwargs):  # noqa: A002
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:  # noqa: A002
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:  # noqa: A002
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def overflowed_series(self) -> int:
        """Observations redirected to ``"_other_"`` by the cardinality cap."""
        with self._lock:
            return self._overflowed

    def render_prometheus(self) -> str:
        """The text exposition format (``GET /metrics``).

        Deterministic: metrics render in registration order, series in
        sorted label order, so a fixed workload under a fixed clock
        produces byte-identical output (golden-tested).
        """
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
            for metric in metrics:
                base = prometheus_name(metric.name)
                if metric.kind == "counter":
                    base += "_total"
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} {metric.kind}")
                for key in sorted(metric._series):
                    labels = _format_labels(metric.labelnames, key)
                    state = metric._series[key]
                    if isinstance(metric, Histogram):
                        lines.extend(
                            self._render_histogram_series(
                                metric, base, key, state
                            )
                        )
                    elif isinstance(metric, Gauge):
                        value = Gauge._read(state)  # type: ignore[arg-type]
                        lines.append(
                            f"{base}{labels} {_format_value(value)}"
                        )
                    else:
                        lines.append(
                            f"{base}{labels} "
                            f"{_format_value(state[0])}"  # type: ignore[index]
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram_series(
        metric: Histogram, base: str, key: _LabelKey, state
    ) -> List[str]:
        lines: List[str] = []
        running = 0
        bounds = [*metric.buckets, float("inf")]
        for bound, n in zip(bounds, state["counts"]):
            running += n
            le = _format_value(bound)
            label_parts = [
                f'{name}="{_escape_label_value(value)}"'
                for name, value in zip(metric.labelnames, key)
            ]
            label_parts.append(f'le="{le}"')
            lines.append(
                f"{base}_bucket{{{','.join(label_parts)}}} {running}"
            )
        labels = _format_labels(metric.labelnames, key)
        lines.append(f"{base}_sum{labels} {_format_value(state['sum'])}")
        lines.append(f"{base}_count{labels} {state['count']}")
        return lines

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of every series (``GET /stats``)."""
        out: Dict[str, object] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                series = []
                for key in sorted(metric._series):
                    labels = dict(zip(metric.labelnames, key))
                    state = metric._series[key]
                    if isinstance(metric, Histogram):
                        series.append({
                            "labels": labels,
                            "count": state["count"],
                            "sum": state["sum"],
                        })
                    elif isinstance(metric, Gauge):
                        series.append({
                            "labels": labels,
                            "value": Gauge._read(state),
                        })
                    else:
                        series.append({
                            "labels": labels,
                            "value": state[0],  # type: ignore[index]
                        })
                out[name] = {"type": metric.kind, "series": series}
        return out


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    def inc(self, value: float = 1, **labels) -> None:
        return None

    def dec(self, value: float = 1, **labels) -> None:
        return None

    def set(self, value: float, **labels) -> None:
        return None

    def set_function(self, fn, **labels) -> None:
        return None

    def observe(self, value: float, **labels) -> None:
        return None

    def value(self, **labels) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def bucket_counts(self, **labels) -> Dict[str, int]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry that records nothing (the overhead baseline)."""

    enabled = False

    def counter(self, name, help="", labelnames=()):  # noqa: A002
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name, help="", labelnames=()):  # noqa: A002
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ):  # noqa: A002
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, object]:
        return {}


#: Shared no-op registry, for callers that want metrics off entirely.
NULL_METRICS = NullMetricsRegistry()

#: The process-wide default registry.  ``construct_tree``, the scheduler
#: and the serving layer all record here unless handed something else,
#: which is what makes ``GET /metrics`` observe the whole stack.
REGISTRY = MetricsRegistry()


def as_metrics(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """``metrics`` itself, or the process-wide default for ``None``."""
    return REGISTRY if metrics is None else metrics


# ----------------------------------------------------------------------
# cross-process forwarding
# ----------------------------------------------------------------------
class _ForwardingInstrument:
    """Instrument proxy that logs every mutation as a replayable op.

    Only *cumulative* mutations are logged (counter increments and
    histogram observations) -- gauges are scrape-time callbacks that the
    parent process computes itself, so forwarding them would double
    report.
    """

    def __init__(self, owner, kind, inner, buckets=None) -> None:
        self._owner = owner
        self._kind = kind
        self._inner = inner
        self._buckets = list(buckets) if buckets is not None else None

    def _log(self, op: str, value: float, labels: Mapping) -> None:
        self._owner._log_op(
            (
                self._kind,
                self._inner.name,
                self._inner.help,
                list(self._inner.labelnames),
                self._buckets,
                op,
                float(value),
                {k: str(v) for k, v in labels.items()},
            )
        )

    def inc(self, value: float = 1, **labels) -> None:
        self._inner.inc(value, **labels)
        self._log("inc", value, labels)

    def observe(self, value: float, **labels) -> None:
        self._inner.observe(value, **labels)
        self._log("observe", value, labels)

    def __getattr__(self, attr):
        # Reads (value/count/sum/...) and gauge writes pass straight
        # through to the real instrument.
        return getattr(self._inner, attr)


class ForwardingMetricsRegistry(MetricsRegistry):
    """A live registry that also logs mutations for cross-process replay.

    A worker process installs one of these as its registry for a job's
    duration; afterwards :meth:`drain_ops` returns a picklable op list
    the parent feeds to :func:`replay_metric_ops` against *its* registry
    -- so ``GET /metrics`` on the serving process sees engine-side
    counters and histograms (e.g. ``solve.seconds``) recorded in worker
    processes.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._ops: List[tuple] = []

    def _log_op(self, op: tuple) -> None:
        with self._lock:
            self._ops.append(op)

    def drain_ops(self) -> List[tuple]:
        """The ops logged since the last drain (and forget them)."""
        with self._lock:
            ops, self._ops = self._ops, []
            return ops

    def counter(self, name, help="", labelnames=()):  # noqa: A002
        return _ForwardingInstrument(
            self, "counter", super().counter(name, help, labelnames)
        )

    def histogram(
        self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ):  # noqa: A002
        return _ForwardingInstrument(
            self,
            "histogram",
            super().histogram(name, help, labelnames, buckets),
            buckets=buckets,
        )


def replay_metric_ops(registry: MetricsRegistry, ops) -> int:
    """Apply ops from a :class:`ForwardingMetricsRegistry` to ``registry``.

    Instruments are created on demand with the same name/help/labels
    (and buckets, for histograms) they had in the worker process, so the
    parent's exposition is indistinguishable from having recorded the
    events locally.  Returns the number of ops applied; malformed ops
    raise ``ValueError`` (they indicate transport corruption).
    """
    applied = 0
    for op in ops:
        kind, name, help_, labelnames, buckets, action, value, labels = op
        if kind == "counter" and action == "inc":
            registry.counter(name, help_, tuple(labelnames)).inc(
                value, **labels
            )
        elif kind == "histogram" and action == "observe":
            registry.histogram(
                name, help_, tuple(labelnames), buckets=tuple(buckets)
            ).observe(value, **labels)
        else:
            raise ValueError(f"unknown metric op {kind!r}/{action!r}")
        applied += 1
    return applied
