"""Live search-progress telemetry for the B&B inner loop.

A long exact solve is a black box between "submitted" and "done": spans
and counters only land after the search settles.  :class:`ProgressTracker`
turns the branch-and-bound loop into a telemetry *stream* -- periodic
snapshots of the incumbent/bound convergence, the shape production MIP
solvers log as the "gap" trace:

``{incumbent_cost, best_lower_bound, gap, nodes_expanded, nodes_created,
open_size, elapsed}``

Design constraints, mirroring the recorder's:

1. **Zero-cost when off.**  The solver guards every tick behind
   ``if tracker is not None``; with no tracker installed the hot loop
   allocates nothing and calls nothing.
2. **Throttled when on.**  ``tick()`` fires a report only when the
   reporting interval has elapsed *or* the incumbent improved by more
   than ``min_delta`` -- the expensive work (the open-list lower-bound
   scan, the event/gauge emission) happens only on firing reports.
3. **Deterministic when tested.**  The clock is injectable, so the
   gating behaviour is reproducible in tests.

Snapshots ride the existing schema-v1 trace stream as ``bnb.progress``
*counter* events (value 1, snapshot in ``attrs``) -- so they flow through
the :class:`~repro.obs.streaming.StreamingRecorder`, cross-process
``ingest``, and trace-id filtering with zero reader changes, and
``counter_totals["bnb.progress"]`` is simply the heartbeat count.  Firing
reports also update the ``bnb.gap`` / ``bnb.nodes_per_second`` gauges and
invoke an optional ``sink`` callback (how worker processes stream
snapshots to the parent mid-``call()``).

The tracker reaches the solver ambiently through
:func:`progress_context`, mirroring ``trace_context``, so
``construct_tree`` and the service scheduler need no signature churn.
"""

from __future__ import annotations

import contextvars
import math
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "ProgressTracker",
    "progress_context",
    "current_progress",
    "format_progress_line",
]

#: The ambient progress tracker.  A ``contextvars`` var so each scheduler
#: worker thread sees the tracker of the job it is executing, with zero
#: signature churn in ``construct_tree`` / the engines.
_PROGRESS: "contextvars.ContextVar[Optional[ProgressTracker]]" = (
    contextvars.ContextVar("repro_progress", default=None)
)


def current_progress() -> Optional["ProgressTracker"]:
    """The tracker of the enclosing :func:`progress_context`, or ``None``."""
    return _PROGRESS.get()


@contextmanager
def progress_context(
    tracker: Optional["ProgressTracker"],
) -> Iterator[Optional["ProgressTracker"]]:
    """Bind ``tracker`` as the ambient progress sink for the block.

    Every :class:`~repro.bnb.sequential.BranchAndBoundSolver` solve inside
    the block drives the tracker from its inner loop.  ``None`` is a
    no-op, so call sites can pass an optional tracker unconditionally.
    """
    if tracker is None:
        yield None
        return
    token = _PROGRESS.set(tracker)
    try:
        yield tracker
    finally:
        _PROGRESS.reset(token)


def format_progress_line(snapshot: Dict[str, object]) -> str:
    """One human-readable line for a snapshot (``--progress`` / ``watch``)."""
    incumbent = snapshot.get("incumbent_cost")
    lb = snapshot.get("best_lower_bound")
    gap = snapshot.get("gap")
    expanded = snapshot.get("nodes_expanded", 0)
    nps = snapshot.get("nodes_per_second")
    elapsed = snapshot.get("elapsed", 0.0)
    inc_text = "inf" if incumbent is None else f"{float(incumbent):.6g}"
    lb_text = "-inf" if lb is None else f"{float(lb):.6g}"
    gap_text = "?" if gap is None else f"{100.0 * float(gap):.2f}%"
    if nps is None:
        elapsed_f = float(elapsed or 0.0)
        nps = float(expanded) / elapsed_f if elapsed_f > 0 else 0.0
    return (
        f"[bnb] incumbent={inc_text} bound={lb_text} gap={gap_text} "
        f"expanded={int(expanded)} open={int(snapshot.get('open_size', 0))} "
        f"{float(nps):,.0f} nodes/s elapsed={float(elapsed):.2f}s"
    )


class ProgressTracker:
    """Throttled incumbent/bound snapshot stream for one B&B solve.

    The solver calls :meth:`tick` once per loop iteration (cheap: one
    clock read and two comparisons when gated closed) and :meth:`final`
    once when the search settles (always fires, so every tracked solve
    yields at least one snapshot).  A tracker is single-solve state;
    create a fresh one per job.

    Parameters
    ----------
    interval_seconds:
        Minimum seconds between interval-triggered reports.
    min_delta:
        An incumbent improvement larger than this fires a report
        immediately, regardless of the interval.
    recorder:
        Optional :class:`~repro.obs.recorder.Recorder`; firing reports
        emit ``bnb.progress`` counter events (value 1, snapshot attrs).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; firing
        reports set the ``bnb.gap`` and ``bnb.nodes_per_second`` gauges.
    sink:
        Optional callable receiving each snapshot dict (the worker
        process's bridge to the parent; the CLI's stderr printer).
    clock:
        Injectable time source (default ``time.perf_counter``).
    """

    __slots__ = (
        "interval_seconds",
        "min_delta",
        "recorder",
        "sink",
        "clock",
        "latest",
        "reports",
        "_gap_gauge",
        "_nps_gauge",
        "_t0",
        "_next_report",
        "_last_incumbent",
        "_best_lb",
    )

    def __init__(
        self,
        *,
        interval_seconds: float = 0.25,
        min_delta: float = 0.0,
        recorder=None,
        metrics=None,
        sink: Optional[Callable[[Dict[str, object]], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if interval_seconds < 0:
            raise ValueError("interval_seconds must be >= 0")
        self.interval_seconds = float(interval_seconds)
        self.min_delta = float(min_delta)
        self.recorder = recorder
        self.sink = sink
        self.clock = clock
        self.latest: Optional[Dict[str, object]] = None
        self.reports = 0
        if metrics is not None and getattr(metrics, "enabled", False):
            self._gap_gauge = metrics.gauge(
                "bnb.gap",
                "Relative incumbent/lower-bound gap of the current "
                "branch-and-bound search",
            )
            self._nps_gauge = metrics.gauge(
                "bnb.nodes_per_second",
                "Node-expansion rate of the current branch-and-bound search",
            )
        else:
            self._gap_gauge = None
            self._nps_gauge = None
        self._t0: Optional[float] = None
        self._next_report = -math.inf
        self._last_incumbent = math.inf
        self._best_lb = -math.inf

    # ------------------------------------------------------------------
    # driving (solver side)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor the solve clock.  Idempotent; ``tick`` calls it lazily."""
        if self._t0 is None:
            self._t0 = self.clock()
            self._next_report = self._t0 + self.interval_seconds

    def tick(self, incumbent: float, stats, open_nodes) -> None:
        """One inner-loop heartbeat; reports only when a gate opens.

        ``stats`` is the solver's ``SearchStats`` (read for
        ``nodes_expanded`` / ``nodes_created``); ``open_nodes`` the live
        open list, scanned for the best lower bound *only* when a report
        actually fires.
        """
        if self._t0 is None:
            self.start()
        now = self.clock()
        # Gate closed while the interval hasn't elapsed and the incumbent
        # hasn't improved by more than min_delta (>=: an unchanged
        # incumbent never fires on the delta gate).
        if (
            now < self._next_report
            and incumbent >= self._last_incumbent - self.min_delta
        ):
            return
        self._report(incumbent, stats, open_nodes, now, final=False)

    def final(self, incumbent: float, stats, open_nodes=()) -> None:
        """Unconditional closing report; guarantees >= 1 snapshot.

        With an empty ``open_nodes`` (search exhausted or pruned dry) the
        lower bound closes onto the incumbent and the gap reads 0.
        """
        if self._t0 is None:
            self.start()
        self._report(incumbent, stats, open_nodes, self.clock(), final=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _report(
        self, incumbent: float, stats, open_nodes, now: float, *, final: bool
    ) -> None:
        self._next_report = now + self.interval_seconds
        self._last_incumbent = incumbent
        elapsed = now - self._t0
        # The global lower bound is the weakest open node's; scanned only
        # here (a firing report), never per tick.  Clamped monotone
        # non-decreasing and never above the incumbent.
        if open_nodes:
            lb = min(node.lower_bound for node in open_nodes)
        elif final:
            lb = incumbent
        else:
            lb = self._best_lb
        if lb > self._best_lb:
            self._best_lb = lb
        lb = min(self._best_lb, incumbent)
        if math.isinf(incumbent):
            gap = math.inf if math.isinf(lb) else 1.0
        elif math.isinf(lb):
            gap = 1.0
        else:
            denom = abs(incumbent)
            gap = max(0.0, incumbent - lb) / denom if denom > 0 else 0.0
        expanded = int(getattr(stats, "nodes_expanded", 0))
        nps = expanded / elapsed if elapsed > 0 else 0.0
        snapshot: Dict[str, object] = {
            "incumbent_cost": None if math.isinf(incumbent) else incumbent,
            "best_lower_bound": None if math.isinf(lb) else lb,
            "gap": None if math.isinf(gap) else gap,
            "nodes_expanded": expanded,
            "nodes_created": int(getattr(stats, "nodes_created", 0)),
            "open_size": len(open_nodes),
            "elapsed": elapsed,
            "nodes_per_second": nps,
            "final": final,
        }
        self.latest = snapshot
        self.reports += 1
        if self.recorder is not None and getattr(
            self.recorder, "enabled", False
        ):
            self.recorder.counter("bnb.progress", 1, **snapshot)
        if self._gap_gauge is not None and snapshot["gap"] is not None:
            self._gap_gauge.set(snapshot["gap"])
        if self._nps_gauge is not None:
            self._nps_gauge.set(nps)
        if self.sink is not None:
            self.sink(snapshot)
