"""The :class:`StreamingRecorder`: trace indefinitely in O(1) memory.

The base :class:`~repro.obs.recorder.Recorder` keeps every event in
memory until someone exports it -- the right shape for a one-shot CLI
build, the wrong shape for a server that traces for days.  This subclass
flips the storage model:

* every closed span/counter is **appended to a JSONL sink immediately**
  (line-buffered text IO: each event line hits the OS in one write, so
  a concurrent reader or a crash sees only whole lines plus at most one
  torn final line -- exactly the case :func:`~repro.obs.recorder.read_jsonl`
  already tolerates);
* memory holds only a **ring buffer** of the most recent ``max_events``
  events for in-process queries (``spans()``, ``counters()``, ``/stats``
  style introspection), so resident size is bounded by the ring, not by
  traffic;
* when the sink grows past ``max_bytes`` it **rotates**: the current
  file is renamed to ``<name>.1`` (replacing the previous generation)
  and a fresh file -- with its own ``meta`` line -- continues in place.
  ``read_jsonl`` accepts the repeated ``meta`` produced by concatenating
  generations back together.

Single-writer by design: one recorder owns its sink file.  The event
*order* in the file is the lock-serialised close order, identical to the
base recorder's in-memory order.

Because every recording path funnels through ``_record``, live solver
telemetry -- the ``bnb.progress`` snapshot counters a
:class:`~repro.obs.progress.ProgressTracker` emits mid-solve -- streams
to the sink the moment each heartbeat fires, not when the solve ends:
``tail -f`` on the sink of a serving process shows the incumbent/gap
trajectory of the job currently running.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.recorder import Event, Recorder, meta_record

__all__ = ["StreamingRecorder"]

#: Default ring-buffer size (events kept in memory for queries).
DEFAULT_MAX_EVENTS = 4096


class StreamingRecorder(Recorder):
    """A :class:`Recorder` that flushes events to a JSONL file as they
    close, keeping only a bounded ring buffer in memory.

    Parameters
    ----------
    path:
        Sink file; created (truncated) on construction.
    clock:
        Injectable clock, as on the base recorder.
    max_events:
        Ring-buffer bound for in-memory queries.  ``events`` /
        ``spans()`` / ``counters()`` see at most this many of the most
        recent events; the file always has everything (modulo rotation).
    max_bytes:
        Rotate the sink when the next line would push it past this size
        (``None`` disables rotation).  A single line larger than the
        bound is still written whole -- events are never split.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError(
                f"max_bytes must be >= 1024 (one rotation per event is "
                f"pathological), got {max_bytes}"
            )
        super().__init__(clock)
        # Replace the unbounded list with a bounded ring; the base
        # class's append/list(...) usage works on a deque unchanged.
        self._events = deque(maxlen=max_events)  # type: ignore[assignment]
        self.path = Path(path)
        self.max_events = max_events
        self.max_bytes = max_bytes
        self.rotations = 0
        self.events_streamed = 0
        self._sink = open(self.path, "w", encoding="utf-8", buffering=1)
        self._sink_bytes = 0
        self._sink_closed = False
        self._write_meta_locked()

    # ------------------------------------------------------------------
    # sink plumbing (all called under self._lock)
    # ------------------------------------------------------------------
    def _write_meta_locked(self) -> None:
        line = json.dumps(meta_record(), sort_keys=True)
        self._sink.write(line + "\n")
        self._sink_bytes += len(line) + 1

    def _rotate_locked(self) -> None:
        self._sink.close()
        rotated = self.path.with_name(self.path.name + ".1")
        self.path.replace(rotated)
        self._sink = open(self.path, "w", encoding="utf-8", buffering=1)
        self._sink_bytes = 0
        self.rotations += 1
        self._write_meta_locked()

    def _record(self, event: Event) -> None:
        line = json.dumps(event.to_json(), sort_keys=True)
        with self._lock:
            self._events.append(event)
            self.events_streamed += 1
            if self._sink_closed:
                return
            needed = len(line) + 1
            if (
                self.max_bytes is not None
                and self._sink_bytes + needed > self.max_bytes
                and self._sink_bytes > 0
            ):
                self._rotate_locked()
            self._sink.write(line + "\n")
            self._sink_bytes += needed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._sink_closed

    def flush(self) -> None:
        """Push buffered bytes to the OS (line buffering already does
        this per event; this is for belt-and-braces shutdown paths)."""
        with self._lock:
            if not self._sink_closed:
                self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink.  Idempotent; events recorded after
        close still land in the ring buffer but not the file."""
        with self._lock:
            if self._sink_closed:
                return
            self._sink.flush()
            self._sink.close()
            self._sink_closed = True

    def __enter__(self) -> "StreamingRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def write_jsonl(self, destination) -> None:
        """Export the *ring buffer* (most recent events) atomically.

        The streamed sink file is the full record; this export exists so
        the base-class API keeps working for ad-hoc snapshots.
        """
        super().write_jsonl(destination)
