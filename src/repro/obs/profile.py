"""Where-the-time-went views over recorded span events.

The paper's Table-3 story is that the largest reduced matrix dominates
the construction time; this module generalises that view to any run:
rebuild the span tree from a :class:`~repro.obs.recorder.Recorder` (or a
JSON-lines file), attribute durations, and render an indented profile
with percentages.  Spans whose ``clock`` attribute is ``"simulated"``
(the cluster simulator's worker intervals) are excluded from the
wall-clock tree by default -- their timestamps live on the simulated
clock, not the recorder's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.recorder import CounterEvent, Event, SpanEvent

__all__ = [
    "ProfileNode",
    "build_span_tree",
    "aggregate_spans",
    "chrome_trace_events",
    "convergence_series",
    "render_convergence",
    "counter_totals",
    "span_gauges",
    "render_span_tree",
    "render_profile",
]


@dataclass
class ProfileNode:
    """One span with its children, ordered by start time."""

    span: SpanEvent
    children: List["ProfileNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans."""
        return self.span.duration - sum(c.span.duration for c in self.children)


def _wall_spans(events: Iterable[Event]) -> List[SpanEvent]:
    return [
        e for e in events
        if isinstance(e, SpanEvent) and e.attrs.get("clock") != "simulated"
    ]


def build_span_tree(events: Iterable[Event]) -> List[ProfileNode]:
    """Rebuild the span forest from a flat event stream.

    Spans whose parent is missing from the stream become roots, so a
    filtered or truncated trace still renders.
    """
    spans = _wall_spans(events)
    nodes = {span.id: ProfileNode(span) for span in spans}
    roots: List[ProfileNode] = []
    for span in spans:
        node = nodes[span.id]
        parent = nodes.get(span.parent) if span.parent is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: c.span.start)
    roots.sort(key=lambda r: r.span.start)
    return roots


def aggregate_spans(
    events: Iterable[Event],
) -> Dict[str, Tuple[int, float]]:
    """``name -> (count, total_seconds)`` over all wall-clock spans."""
    totals: Dict[str, Tuple[int, float]] = {}
    for span in _wall_spans(events):
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, seconds + span.duration)
    return totals


def counter_totals(events: Iterable[Event]) -> Dict[str, float]:
    """``name -> summed value`` over all counter events."""
    totals: Dict[str, float] = {}
    for event in events:
        if isinstance(event, CounterEvent):
            totals[event.name] = totals.get(event.name, 0.0) + event.value
    return totals


def span_gauges(
    events: Iterable[Event],
) -> Dict[str, Tuple[int, float, float, float]]:
    """``attr -> (count, min, mean, max)`` over metric-style span attrs.

    Non-additive per-run statistics -- the solver's ``bnb.max_open_size``,
    ``bnb.prune_fraction``, ``bnb.seed_gap_fraction`` -- ride on their
    span as dotted-name attributes rather than being emitted as counters:
    summing a maximum (or a fraction) over repeated solves produces a
    meaningless total, which is exactly what the old counter emission did
    to multi-solve profiles.  This rollup treats them as gauges and
    reports the distribution instead.

    Only attributes whose key contains a ``.`` (the metric-name
    convention) and whose value is a plain number are collected, so
    structural span attrs (``n``, ``size``, ``solver``...) stay out.
    """
    stats: Dict[str, Tuple[int, float, float, float]] = {}
    for span in _wall_spans(events):
        for key, value in span.attrs.items():
            if "." not in key:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            count, low, total, high = stats.get(
                key, (0, float("inf"), 0.0, float("-inf"))
            )
            stats[key] = (
                count + 1, min(low, value), total + value, max(high, value)
            )
    return {
        key: (count, low, total / count, high)
        for key, (count, low, total, high) in stats.items()
    }


def filter_by_trace_id(
    events: Iterable[Event], trace_id: str
) -> List[Event]:
    """Events belonging to one request's trace.

    Keeps every event whose ``attrs["trace_id"]`` matches, every span
    *descended* from a matching span (children inherit the trace even if
    their own attrs lack the id -- e.g. deeply nested engine spans
    recorded before the stamp existed), and every counter attached to a
    kept span.  Order is preserved, so the result profiles and exports
    exactly like a full trace.
    """
    events = list(events)
    spans = [e for e in events if isinstance(e, SpanEvent)]
    parent_of = {s.id: s.parent for s in spans}
    directly = {
        s.id for s in spans if s.attrs.get("trace_id") == trace_id
    }

    def in_trace(span_id: Optional[int]) -> bool:
        seen = set()
        while span_id is not None and span_id not in seen:
            if span_id in directly:
                return True
            seen.add(span_id)
            span_id = parent_of.get(span_id)
        return False

    kept: List[Event] = []
    for event in events:
        if isinstance(event, SpanEvent):
            if in_trace(event.id):
                kept.append(event)
        elif (
            event.attrs.get("trace_id") == trace_id or in_trace(event.span)
        ):
            kept.append(event)
    return kept


def convergence_series(events: Iterable[Event]) -> List[Dict[str, object]]:
    """The solver's incumbent/bound trajectory, in time order.

    Each ``bnb.progress`` counter event carries one snapshot in its
    attrs (see :mod:`repro.obs.progress`); this returns those snapshots
    as dicts with the event's recorder-clock timestamp under ``"time"``
    -- the cost-vs-time series the profile's convergence section and
    external plots consume.
    """
    points = [
        e for e in events
        if isinstance(e, CounterEvent) and e.name == "bnb.progress"
    ]
    points.sort(key=lambda e: e.time)
    return [dict(e.attrs, time=e.time) for e in points]


def render_convergence(
    events: Iterable[Event], *, top: Optional[int] = 10
) -> Optional[str]:
    """The "convergence" profile section, or ``None`` without progress.

    Long solves produce many snapshots; the section samples evenly
    (first and last always shown) down to ``top`` rows.
    """
    series = convergence_series(events)
    if not series:
        return None
    shown = series
    if top is not None and len(series) > top:
        step = (len(series) - 1) / (top - 1)
        indices = sorted({round(i * step) for i in range(top)})
        shown = [series[i] for i in indices]
    t0 = float(shown[0].get("time", 0.0))
    lines = [
        "",
        f"convergence ({len(series)} bnb.progress snapshot(s)):",
    ]
    for point in shown:
        incumbent = point.get("incumbent_cost")
        lb = point.get("best_lower_bound")
        gap = point.get("gap")
        inc_text = "inf" if incumbent is None else f"{float(incumbent):.6g}"
        lb_text = "-inf" if lb is None else f"{float(lb):.6g}"
        gap_text = "?" if gap is None else f"{100.0 * float(gap):6.2f}%"
        lines.append(
            f"  +{float(point.get('time', t0)) - t0:8.3f}s  "
            f"incumbent={inc_text:<12} bound={lb_text:<12} gap={gap_text}  "
            f"expanded={int(point.get('nodes_expanded', 0)):<8d} "
            f"open={int(point.get('open_size', 0))}"
        )
    return "\n".join(lines)


def chrome_trace_events(events: Iterable[Event]) -> Dict[str, object]:
    """Convert schema-v1 events to Chrome trace-event format.

    The returned dict serialises to a JSON file Perfetto /
    ``chrome://tracing`` open directly: spans become complete (``"X"``)
    events with microsecond ``ts``/``dur``, counters become counter
    (``"C"``) events whose ``args`` carry the value plus any numeric
    attrs (so ``bnb.progress`` plots gap/incumbent tracks).  ``pid`` /
    ``tid`` come from span attrs where present (``pid`` attr;
    ``worker``/``tid`` attr), defaulting to 0 -- one lane per worker.
    Timestamps are re-based so the trace starts at 0.
    """
    events = list(events)
    starts = [
        e.start if isinstance(e, SpanEvent) else e.time
        for e in events
        if isinstance(e, (SpanEvent, CounterEvent))
    ]
    origin = min(starts, default=0.0)

    def lane(attrs: Dict[str, object]) -> Tuple[object, object]:
        pid = attrs.get("pid", 0)
        tid = attrs.get("worker", attrs.get("tid", 0))
        return pid, tid

    trace_events: List[Dict[str, object]] = []
    for event in events:
        if isinstance(event, SpanEvent):
            pid, tid = lane(event.attrs)
            trace_events.append({
                "name": event.name,
                "ph": "X",
                "cat": "span",
                "ts": (event.start - origin) * 1e6,
                "dur": event.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(event.attrs),
            })
        elif isinstance(event, CounterEvent):
            pid, tid = lane(event.attrs)
            args: Dict[str, object] = {"value": event.value}
            for key, value in event.attrs.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                args[key] = value
            trace_events.append({
                "name": event.name,
                "ph": "C",
                "cat": "counter",
                "ts": (event.time - origin) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _attr_suffix(span: SpanEvent) -> str:
    shown = {
        k: v for k, v in span.attrs.items()
        if k in ("solver", "size", "n", "method", "worker", "workers")
    }
    if not shown:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
    return f" [{inner}]"


def render_span_tree(
    events: Iterable[Event],
    *,
    min_fraction: float = 0.0,
) -> str:
    """Indented span tree with durations and percent-of-total.

    ``min_fraction`` hides subtrees below that share of the total (their
    time still counts toward their parent).
    """
    roots = build_span_tree(events)
    if not roots:
        return "(no spans recorded)"
    total = sum(r.span.duration for r in roots) or 1.0
    lines: List[str] = []

    def emit(node: ProfileNode, prefix: str, child_prefix: str) -> None:
        duration = node.span.duration
        fraction = duration / total
        if fraction < min_fraction:
            return
        lines.append(
            f"{prefix}{node.span.name}{_attr_suffix(node.span)}"
            f"  {duration * 1e3:10.3f} ms  {fraction:6.1%}"
        )
        visible = [
            c for c in node.children if c.span.duration / total >= min_fraction
        ]
        for i, child in enumerate(visible):
            last = i == len(visible) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            emit(child, child_prefix + branch, child_prefix + extend)

    for root in roots:
        emit(root, "", "")
    return "\n".join(lines)


def render_profile(
    events: Iterable[Event],
    *,
    min_fraction: float = 0.0,
    top: Optional[int] = 10,
) -> str:
    """The full ``repro-mut profile`` report: span tree, per-name rollup
    and counter totals."""
    sections = [render_span_tree(events, min_fraction=min_fraction)]
    aggregates = aggregate_spans(events)
    if aggregates:
        grand = max(seconds for _, seconds in aggregates.values())
        rows = sorted(aggregates.items(), key=lambda item: -item[1][1])
        if top is not None:
            rows = rows[:top]
        width = max(len(name) for name, _ in rows)
        lines = ["", "span totals by name:"]
        for name, (count, seconds) in rows:
            row = f"  {name:<{width}}  x{count:<5d} {seconds * 1e3:10.3f} ms"
            if grand > 0:
                row += f"  {seconds / grand:6.1%}"
            lines.append(row)
        sections.append("\n".join(lines))
    counters = counter_totals(events)
    if counters:
        width = max(len(name) for name in counters)
        sections.append(
            "\n".join(
                ["", "counters:"]
                + [
                    f"  {name:<{width}}  {value:g}"
                    for name, value in sorted(counters.items())
                ]
            )
        )
    convergence = render_convergence(events, top=top)
    if convergence is not None:
        sections.append(convergence)
    gauges = span_gauges(events)
    if gauges:
        width = max(len(name) for name in gauges)
        sections.append(
            "\n".join(
                ["", "span gauges (min/mean/max):"]
                + [
                    f"  {name:<{width}}  x{count:<5d} "
                    f"{low:g} / {mean:g} / {high:g}"
                    for name, (count, low, mean, high) in sorted(
                        gauges.items()
                    )
                ]
            )
        )
    return "\n".join(sections)
