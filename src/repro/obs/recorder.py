"""The :class:`Recorder`: spans, counters and JSON-lines export.

Design constraints, in order:

1. **Zero-cost when off.**  Every engine defaults to the shared
   :data:`NULL_RECORDER`, whose ``span``/``counter``/``add_span`` are
   allocation-free no-ops, so the branch-and-bound hot loops and the
   UPGMM vectorised path stay exactly as fast as before.
2. **Deterministic when tested.**  The clock is injectable
   (``Recorder(clock=fake)``), so span timestamps -- and therefore the
   JSON-lines output -- are reproducible byte for byte in tests.
3. **One flat event list.**  Spans carry ``id``/``parent`` links instead
   of being nested objects; consumers (the profile view, the Gantt
   projection in :mod:`repro.parallel.trace`) rebuild whatever tree or
   timeline they need.

Event schema (JSON lines, one object per line; see
``docs/observability.md``)::

    {"event": "meta", "schema": 1}
    {"event": "span", "id": 1, "parent": null, "name": "pipeline.build",
     "start": 0.0, "end": 1.5, "duration": 1.5, "attrs": {"n": 26}}
    {"event": "counter", "name": "bnb.nodes_expanded", "value": 42,
     "time": 1.2, "span": 1, "attrs": {}}
"""

from __future__ import annotations

import contextvars
import io as _io
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "meta_record",
    "Span",
    "SpanEvent",
    "CounterEvent",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_recorder",
    "read_jsonl",
    "TraceEvents",
    "current_trace_id",
    "trace_context",
]

#: Version stamped into the ``meta`` line of every JSON-lines export.
SCHEMA_VERSION = 1


def meta_record() -> Dict[str, object]:
    """The ``meta`` line every JSON-lines export starts with.

    Carries the schema version (what :func:`read_jsonl` validates) plus
    the engine fingerprint (``repro.version.engine_fingerprint``), so a
    trace file identifies the code that produced it.  Readers ignore the
    extra keys; old traces without them still parse.
    """
    from repro.version import engine_fingerprint

    return {
        "event": "meta",
        "schema": SCHEMA_VERSION,
        "engine": engine_fingerprint(),
    }

Event = Union["SpanEvent", "CounterEvent"]

#: The ambient trace id (request correlation).  A ``contextvars`` var so
#: each scheduler worker thread -- and any task it spawns -- sees the id
#: of the job it is currently executing, with zero signature churn in
#: the engines.
_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def current_trace_id() -> Optional[str]:
    """The trace id of the enclosing :func:`trace_context`, or ``None``."""
    return _TRACE_ID.get()


@contextmanager
def trace_context(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace_id`` as the ambient trace id for the block.

    Every span and counter recorded inside the block (on the same thread
    or context) automatically carries ``attrs["trace_id"]``, which is
    how one HTTP request's id reaches the ``pipeline.*`` / ``bnb.*`` /
    ``mp.worker`` events it causes.  ``None`` is a no-op, so call sites
    can pass an optional id unconditionally.
    """
    if trace_id is None:
        yield None
        return
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


def _stamp_trace_id(attrs: Dict[str, object]) -> Dict[str, object]:
    """Add the ambient trace id to ``attrs`` unless already present."""
    trace_id = _TRACE_ID.get()
    if trace_id is not None and "trace_id" not in attrs:
        attrs["trace_id"] = trace_id
    return attrs


@dataclass(frozen=True)
class SpanEvent:
    """A closed, timed phase of work."""

    id: int
    parent: Optional[int]
    name: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> Dict[str, object]:
        return {
            "event": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class CounterEvent:
    """A named tally emitted at a point in time."""

    name: str
    value: float
    time: float
    span: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "event": "counter",
            "name": self.name,
            "value": self.value,
            "time": self.time,
            "span": self.span,
            "attrs": self.attrs,
        }


class Span:
    """Handle for a span that is currently open on a :class:`Recorder`.

    ``start``/``end`` are recorder-clock timestamps; ``end`` is ``None``
    until the ``with`` block exits.  The null recorder hands out a shared
    sentinel whose timestamps stay ``None``.
    """

    __slots__ = ("id", "parent", "name", "start", "end", "attrs")

    def __init__(
        self,
        id: Optional[int],
        parent: Optional[int],
        name: str,
        start: Optional[float],
        attrs: Dict[str, object],
    ) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start


class _NullContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = Span(None, None, "", None, {})

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> bool:
        return False


class NullRecorder:
    """Recorder that records nothing (the engines' default).

    It still carries a ``clock`` so callers can time work consistently
    through an injected clock even when nothing is recorded (the batch
    runner relies on this).
    """

    enabled = False

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._null_context = _NullContext()

    @property
    def events(self) -> List[Event]:
        return []

    def span(self, name: str, **attrs) -> _NullContext:
        return self._null_context

    def add_span(
        self, name: str, start: float, end: float, **attrs
    ) -> None:
        return None

    def counter(self, name: str, value: float = 1, **attrs) -> None:
        return None

    def spans(self, name: Optional[str] = None) -> List[SpanEvent]:
        return []

    def counters(self, name: Optional[str] = None) -> List[CounterEvent]:
        return []

    def counter_total(self, name: str) -> float:
        return 0.0

    def ingest(self, events, *, offset: float = 0.0) -> int:
        return 0


#: Shared default instance; engines use it when no recorder is supplied.
NULL_RECORDER = NullRecorder()


class Recorder(NullRecorder):
    """In-memory event sink with span nesting and JSON-lines export.

    Thread-safe: the span *stack* is thread-local (each thread nests its
    own spans; a span opened on thread A never becomes the parent of a
    span opened on thread B), while the event list and id allocation are
    guarded by a lock, so worker-pool engines and the serving layer can
    share one recorder and land every event in a single trace stream.
    Single-threaded behaviour -- including event order and span ids under
    a deterministic clock -- is unchanged.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        super().__init__(clock)
        self._events: List[Event] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    def _stack_for_thread(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Event]:
        """All recorded events; spans appear when they *close*."""
        with self._lock:
            return list(self._events)

    def _record(self, event: Event) -> None:
        """Land one closed event.  Every recording path funnels through
        here, so sinks (the streaming recorder) override a single spot."""
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested, timed span around a ``with`` block."""
        _stamp_trace_id(attrs)
        stack = self._stack_for_thread()
        parent = stack[-1].id if stack else None
        handle = Span(self._allocate_id(), parent, name, self.clock(), attrs)
        stack.append(handle)
        try:
            yield handle
        finally:
            handle.end = self.clock()
            stack.pop()
            self._record(SpanEvent(
                id=handle.id,
                parent=handle.parent,
                name=name,
                start=handle.start,
                end=handle.end,
                attrs=attrs,
            ))

    def add_span(
        self, name: str, start: float, end: float, **attrs
    ) -> SpanEvent:
        """Record an externally timed span (e.g. a simulated worker's busy
        interval, or a worker process timed by the master).  It is parented
        to whatever span is currently open on the calling thread."""
        _stamp_trace_id(attrs)
        stack = self._stack_for_thread()
        parent = stack[-1].id if stack else None
        event = SpanEvent(
            id=self._allocate_id(), parent=parent, name=name,
            start=start, end=end, attrs=attrs,
        )
        self._record(event)
        return event

    def counter(self, name: str, value: float = 1, **attrs) -> CounterEvent:
        """Record a named tally, attached to the calling thread's open span."""
        _stamp_trace_id(attrs)
        stack = self._stack_for_thread()
        span_id = stack[-1].id if stack else None
        event = CounterEvent(
            name=name, value=value, time=self.clock(), span=span_id, attrs=attrs
        )
        self._record(event)
        return event

    def ingest(self, events, *, offset: float = 0.0) -> int:
        """Replay serialized events from another process into this trace.

        ``events`` is a list of ``to_json()``-shaped dicts (what a worker
        process ships back across a queue); ``offset`` is added to every
        timestamp, re-basing the child's clock onto this recorder's (the
        two ``perf_counter`` origins are not comparable across
        processes).  Span ids are freshly allocated with parent links
        preserved; events whose parent did not cross the boundary (and
        root events) are parented to the calling thread's currently open
        span, so a forwarded worker trace nests inside the parent's
        ``service.job`` span exactly like locally recorded work.
        Returns the number of events ingested; unknown kinds (``meta``)
        are skipped.
        """
        stack = self._stack_for_thread()
        root_parent = stack[-1].id if stack else None
        # Two passes: ids first, so a child span recorded before its
        # parent closed still maps its parent link correctly.
        id_map = {
            record["id"]: self._allocate_id()
            for record in events
            if record.get("event") == "span"
        }

        def remap(old: Optional[int]) -> Optional[int]:
            if old is None:
                return root_parent
            return id_map.get(old, root_parent)

        ingested = 0
        for record in events:
            kind = record.get("event")
            if kind == "span":
                self._record(SpanEvent(
                    id=id_map[record["id"]],
                    parent=remap(record.get("parent")),
                    name=record["name"],
                    start=record["start"] + offset,
                    end=record["end"] + offset,
                    attrs=dict(record.get("attrs", {})),
                ))
            elif kind == "counter":
                self._record(CounterEvent(
                    name=record["name"],
                    value=record["value"],
                    time=record["time"] + offset,
                    span=remap(record.get("span")),
                    attrs=dict(record.get("attrs", {})),
                ))
            else:
                continue
            ingested += 1
        return ingested

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[SpanEvent]:
        return [
            e for e in self.events
            if isinstance(e, SpanEvent) and (name is None or e.name == name)
        ]

    def counters(self, name: Optional[str] = None) -> List[CounterEvent]:
        return [
            e for e in self.events
            if isinstance(e, CounterEvent) and (name is None or e.name == name)
        ]

    def counter_total(self, name: str) -> float:
        """Sum of every counter event with this name."""
        return sum(e.value for e in self.counters(name))

    # ------------------------------------------------------------------
    # JSON-lines export
    # ------------------------------------------------------------------
    def json_lines(self) -> List[str]:
        """The serialized event stream, meta line first."""
        lines = [json.dumps(meta_record(), sort_keys=True)]
        lines.extend(
            json.dumps(event.to_json(), sort_keys=True) for event in self.events
        )
        return lines

    def write_jsonl(
        self, destination: Union[str, Path, _io.TextIOBase]
    ) -> None:
        """Write the event stream as JSON lines to a path or open file.

        Path destinations are written *atomically* (a sibling temp file
        then ``os.replace``), so a crash mid-export can never leave a
        half-written trace that :func:`read_jsonl` rejects as mid-stream
        corruption -- the destination either keeps its old content or
        gains the complete new one.
        """
        text = "\n".join(self.json_lines()) + "\n"
        if hasattr(destination, "write"):
            destination.write(text)  # type: ignore[union-attr]
            return
        path = Path(destination)
        tmp = path.with_name(
            f".{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # replace failed; don't litter
                tmp.unlink()


def as_recorder(recorder: Optional[NullRecorder]) -> NullRecorder:
    """``recorder`` itself, or the shared null recorder for ``None``."""
    return NULL_RECORDER if recorder is None else recorder


class TraceEvents(List[Event]):
    """A list of events plus a ``warning`` set when the source file was
    incomplete (e.g. a crash truncated the final line mid-record).

    Behaves exactly like the plain list :func:`read_jsonl` used to
    return; callers that care can check ``events.warning is not None``.
    """

    warning: Optional[str] = None


def read_jsonl(
    source: Union[str, Path, _io.TextIOBase]
) -> TraceEvents:
    """Parse a JSON-lines event stream back into typed events.

    The ``meta`` line is validated and dropped; unknown event kinds raise
    ``ValueError`` so schema drift fails loudly rather than silently.

    A *truncated final line* -- the signature of a writer killed
    mid-record -- does not raise: the complete prefix is returned and the
    result's ``warning`` attribute describes what was dropped.  Malformed
    JSON anywhere *before* the final line still raises, since that is
    corruption, not interruption.

    A *repeated* ``meta`` line mid-stream is skipped with a warning
    rather than rejected: rotation and ``cat``-concatenated trace files
    legitimately produce one meta line per segment.  Each is still
    schema-validated.
    """
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = Path(source).read_text()
    events = TraceEvents()
    warnings: List[str] = []
    seen_meta = False
    lines = text.splitlines()
    last_content_line = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    for line_no, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_no == last_content_line:
                warnings.append(
                    f"line {line_no}: truncated record dropped "
                    f"({exc.msg}); trace was interrupted mid-write"
                )
                break
            raise ValueError(
                f"line {line_no}: malformed JSON mid-stream: {exc.msg}"
            ) from exc
        kind = record.get("event")
        if kind == "meta":
            schema = record.get("schema")
            if schema != SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema {schema!r} "
                    f"(this reader understands {SCHEMA_VERSION})"
                )
            if seen_meta:
                warnings.append(
                    f"line {line_no}: repeated meta line skipped "
                    f"(rotated or concatenated trace)"
                )
            seen_meta = True
        elif kind == "span":
            events.append(
                SpanEvent(
                    id=record["id"],
                    parent=record.get("parent"),
                    name=record["name"],
                    start=record["start"],
                    end=record["end"],
                    attrs=record.get("attrs", {}),
                )
            )
        elif kind == "counter":
            events.append(
                CounterEvent(
                    name=record["name"],
                    value=record["value"],
                    time=record["time"],
                    span=record.get("span"),
                    attrs=record.get("attrs", {}),
                )
            )
        else:
            raise ValueError(
                f"line {line_no}: unknown event kind {kind!r}"
            )
    if warnings:
        events.warning = "; ".join(warnings)
    return events
