"""Structured observability for the compact-set pipeline.

The paper's headline claim is a *time* claim (77-99.7% of the search
effort saved with tree cost within 5% of optimal), so the repository
needs first-class effort accounting, not scattered ``elapsed_seconds``
fields.  This package provides it:

* :class:`Recorder` -- an in-memory event sink with a *span* API
  (nested, timed phases: discover / reduce / solve / merge) and a
  *counter* API (branch-and-bound expand / prune / incumbent tallies);
* :class:`NullRecorder` / :data:`NULL_RECORDER` -- the allocation-free
  default every engine uses when no recorder is supplied, so the hot
  paths pay nothing for the instrumentation;
* JSON-lines export/import (:meth:`Recorder.write_jsonl`,
  :func:`read_jsonl`) -- one event per line, schema documented in
  ``docs/observability.md``;
* :mod:`repro.obs.profile` -- the "where the time went" span-tree view
  the ``repro-mut profile`` subcommand prints.
"""

from repro.obs.recorder import (
    NULL_RECORDER,
    SCHEMA_VERSION,
    CounterEvent,
    NullRecorder,
    Recorder,
    Span,
    SpanEvent,
    TraceEvents,
    as_recorder,
    current_trace_id,
    read_jsonl,
    trace_context,
)
from repro.obs.streaming import StreamingRecorder
from repro.obs.metrics import (
    NULL_METRICS,
    REGISTRY,
    Counter,
    ForwardingMetricsRegistry,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    as_metrics,
    replay_metric_ops,
)
from repro.obs.profile import (
    ProfileNode,
    aggregate_spans,
    build_span_tree,
    chrome_trace_events,
    convergence_series,
    counter_totals,
    filter_by_trace_id,
    render_convergence,
    render_profile,
    render_span_tree,
    span_gauges,
)
from repro.obs.progress import (
    ProgressTracker,
    current_progress,
    format_progress_line,
    progress_context,
)

__all__ = [
    "Recorder",
    "StreamingRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "SpanEvent",
    "CounterEvent",
    "SCHEMA_VERSION",
    "TraceEvents",
    "as_recorder",
    "read_jsonl",
    "current_trace_id",
    "trace_context",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "REGISTRY",
    "Counter",
    "ForwardingMetricsRegistry",
    "Gauge",
    "Histogram",
    "as_metrics",
    "replay_metric_ops",
    "ProfileNode",
    "build_span_tree",
    "aggregate_spans",
    "chrome_trace_events",
    "convergence_series",
    "counter_totals",
    "span_gauges",
    "filter_by_trace_id",
    "render_convergence",
    "render_span_tree",
    "render_profile",
    "ProgressTracker",
    "progress_context",
    "current_progress",
    "format_progress_line",
]
