"""One canonical identity for the running engine.

Results are only comparable across runs when we know *which engine*
produced them, and "which engine" is more than the package version: a
cache-key derivation bump invalidates on-disk payloads, a trace-schema
bump changes what the JSONL readers accept, and an uncommitted tree can
behave like no released version at all.  This module gathers those
scattered constants -- ``repro.__version__``,
``repro.service.cache.CACHE_KEY_VERSION``,
``repro.obs.recorder.SCHEMA_VERSION`` and (when available) the git
commit -- into a single :func:`engine_fingerprint` dict that is stamped
everywhere a result can outlive the process:

* ``repro-mut --version`` (human-readable summary),
* ``GET /healthz`` (the ``"engine"`` object),
* the ``meta`` line of every JSON-lines trace export,
* campaign rows in the run database (``docs/campaigns.md``),
* fuzz-corpus sidecars (``docs/verification.md``).

Two artefacts with equal fingerprints were produced by the same code
operating under the same persistence contracts; a campaign diff between
unequal fingerprints is a *cross-version* comparison and is labelled as
such.
"""

from __future__ import annotations

import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

__all__ = ["engine_fingerprint", "fingerprint_summary"]


@lru_cache(maxsize=1)
def _git_sha() -> Optional[str]:
    """The working tree's commit (short sha), or ``None`` outside git.

    Memoised for the process lifetime: the fingerprint describes the
    code that was *imported*, which cannot change under a running
    process even if the repository advances.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def engine_fingerprint() -> Dict[str, object]:
    """The canonical ``{version, cache_key_version, trace_schema,
    git_sha?}`` identity of this engine.

    ``git_sha`` is present only when the package runs from a git
    checkout.  Returns a fresh dict each call (callers stash it in JSON
    payloads and must not share mutable state).
    """
    from repro import __version__
    from repro.obs.recorder import SCHEMA_VERSION
    from repro.service.cache import CACHE_KEY_VERSION

    fingerprint: Dict[str, object] = {
        "version": __version__,
        "cache_key_version": CACHE_KEY_VERSION,
        "trace_schema": SCHEMA_VERSION,
    }
    sha = _git_sha()
    if sha is not None:
        fingerprint["git_sha"] = sha
    return fingerprint


def fingerprint_summary(
    fingerprint: Optional[Dict[str, object]] = None,
) -> str:
    """One-line human rendering, e.g. for ``repro-mut --version``.

    ``1.0.0 (cache-key v2, trace schema v1, git 0bd0961aa)`` -- accepts
    a stored fingerprint dict so the campaign CLI can render rows from
    the database with the same formatting.
    """
    fp = fingerprint if fingerprint is not None else engine_fingerprint()
    parts = [
        f"cache-key v{fp.get('cache_key_version', '?')}",
        f"trace schema v{fp.get('trace_schema', '?')}",
    ]
    if fp.get("git_sha"):
        parts.append(f"git {fp['git_sha']}")
    return f"{fp.get('version', '?')} ({', '.join(parts)})"
