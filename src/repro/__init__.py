"""repro -- minimum ultrametric evolutionary trees via compact sets.

A reproduction of *"A Fast Technique for Constructing Evolutionary Tree
with the Application of Compact Sets"* (Yu et al., PaCT 2005) and its
substrate, the parallel branch-and-bound minimum-ultrametric-tree solver
(Yu et al., HPCAsia 2005).

Quickstart::

    from repro import DistanceMatrix, construct_tree

    matrix = DistanceMatrix([[0, 2, 8], [2, 0, 8], [8, 8, 0]])
    result = construct_tree(matrix, method="compact")
    print(result.cost, result.tree)
"""

from repro.matrix import (
    DistanceMatrix,
    matrix_summary,
    maxmin_permutation,
    metric_closure,
    random_metric_matrix,
    clustered_matrix,
    perturbed_ultrametric_matrix,
    read_phylip,
    write_phylip,
)
from repro.matrix.generators import hierarchical_matrix, random_ultrametric_matrix
from repro.graph import (
    kruskal_mst,
    prim_mst,
    find_compact_sets,
    find_compact_sets_fast,
    is_compact,
    CompactSetHierarchy,
)
from repro.tree import (
    UltrametricTree,
    TreeNode,
    to_newick,
    parse_newick,
    count_33_contradictions,
    majority_consensus,
    render_ascii,
    robinson_foulds,
    cophenetic_correlation,
)
from repro.heuristics import upgma, upgmm, neighbor_joining
from repro.bnb import BranchAndBoundSolver, exact_mut
from repro.parallel import (
    ClusterConfig,
    grid_config,
    ParallelBranchAndBound,
    multiprocess_mut,
)
from repro.core import (
    CompactSetTreeBuilder,
    construct_tree,
    construct_tree_cached,
    reduce_matrix,
    validate_tree,
)
from repro.service import (
    ResultCache,
    Scheduler,
    ServiceClient,
    ServiceServer,
)
from repro.sequences import (
    generate_hmdna_dataset,
    hmdna_matrices,
    distance_matrix_from_sequences,
    read_fasta,
    write_fasta,
    bootstrap_support,
)
from repro.version import engine_fingerprint, fingerprint_summary
from repro.campaign import (
    CampaignDB,
    Suite,
    diff_campaigns,
    load_suite,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "DistanceMatrix",
    "matrix_summary",
    "maxmin_permutation",
    "metric_closure",
    "random_metric_matrix",
    "clustered_matrix",
    "hierarchical_matrix",
    "random_ultrametric_matrix",
    "perturbed_ultrametric_matrix",
    "read_phylip",
    "write_phylip",
    "kruskal_mst",
    "prim_mst",
    "find_compact_sets",
    "find_compact_sets_fast",
    "is_compact",
    "CompactSetHierarchy",
    "UltrametricTree",
    "TreeNode",
    "to_newick",
    "parse_newick",
    "count_33_contradictions",
    "majority_consensus",
    "render_ascii",
    "robinson_foulds",
    "cophenetic_correlation",
    "upgma",
    "upgmm",
    "neighbor_joining",
    "BranchAndBoundSolver",
    "exact_mut",
    "ClusterConfig",
    "grid_config",
    "ParallelBranchAndBound",
    "multiprocess_mut",
    "CompactSetTreeBuilder",
    "construct_tree",
    "construct_tree_cached",
    "reduce_matrix",
    "validate_tree",
    "ResultCache",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "generate_hmdna_dataset",
    "hmdna_matrices",
    "distance_matrix_from_sequences",
    "read_fasta",
    "write_fasta",
    "bootstrap_support",
    "engine_fingerprint",
    "fingerprint_summary",
    "CampaignDB",
    "Suite",
    "diff_campaigns",
    "load_suite",
    "run_campaign",
    "__version__",
]
