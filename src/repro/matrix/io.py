"""Distance-matrix I/O.

The tool system the project report describes exposes the pipeline to
biologists, so the matrix formats they actually use are supported:

* **PHYLIP square format** -- first line the species count, then one row
  per species: a name (first whitespace-delimited token) followed by ``n``
  distances;
* **CSV** -- header row of labels, then one labelled row per species.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError

__all__ = ["read_phylip", "write_phylip", "read_csv_matrix", "write_csv_matrix"]

PathLike = Union[str, Path]


def _read_text(source: Union[PathLike, _io.TextIOBase]) -> str:
    if hasattr(source, "read"):
        return source.read()  # type: ignore[union-attr]
    return Path(source).read_text()


def read_phylip(source: Union[PathLike, _io.TextIOBase]) -> DistanceMatrix:
    """Parse a PHYLIP square distance matrix from a path or open file."""
    text = _read_text(source)
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise MatrixValidationError("empty PHYLIP input")
    try:
        n = int(lines[0].split()[0])
    except (ValueError, IndexError):
        raise MatrixValidationError(
            f"first PHYLIP line must be the species count, got {lines[0]!r}"
        ) from None
    if len(lines) - 1 < n:
        raise MatrixValidationError(
            f"PHYLIP header promises {n} rows, found {len(lines) - 1}"
        )
    if len(lines) - 1 > n:
        # Silently dropping data would let a wrong header truncate the
        # matrix; make the mismatch loud instead.
        raise MatrixValidationError(
            f"PHYLIP header promises {n} rows, found {len(lines) - 1} "
            f"non-empty rows; extra data would be ignored"
        )
    labels: List[str] = []
    values = np.zeros((n, n))
    for row, line in enumerate(lines[1 : n + 1]):
        tokens = line.split()
        if len(tokens) != n + 1:
            raise MatrixValidationError(
                f"PHYLIP row {row} has {len(tokens) - 1} distances, expected {n}"
            )
        labels.append(tokens[0])
        try:
            values[row] = [float(t) for t in tokens[1:]]
        except ValueError:
            bad = next(t for t in tokens[1:] if not _is_float(t))
            raise MatrixValidationError(
                f"PHYLIP row {row} ({tokens[0]!r}) has a non-numeric "
                f"distance {bad!r}"
            ) from None
    return DistanceMatrix(values, labels)


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def write_phylip(matrix: DistanceMatrix, destination: Union[PathLike, _io.TextIOBase]) -> None:
    """Write ``matrix`` in PHYLIP square format.

    Distances are written with full float precision so a read-back
    matrix is bit-identical (rounding could otherwise break the strict
    metric predicate).

    Labels containing whitespace (or empty labels) are rejected with
    :class:`MatrixValidationError`: the format delimits fields with
    whitespace, so such labels could not round-trip -- ``read_phylip``
    would split them into spurious tokens and corrupt the row.
    """
    for label in matrix.labels:
        if not label or label.split() != [label]:
            raise MatrixValidationError(
                f"label {label!r} cannot be written to PHYLIP: labels are "
                f"whitespace-delimited and must be non-empty; rename the "
                f"species (e.g. replace spaces with underscores)"
            )
    lines = [f"{matrix.n}"]
    width = max(len(label) for label in matrix.labels) if matrix.n else 0
    for i, label in enumerate(matrix.labels):
        row = " ".join(f"{matrix.values[i, j]:.17g}" for j in range(matrix.n))
        lines.append(f"{label:<{width}} {row}")
    text = "\n".join(lines) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(text)


def read_csv_matrix(source: Union[PathLike, _io.TextIOBase]) -> DistanceMatrix:
    """Parse a labelled CSV distance matrix.

    Expected layout: a header ``,label1,label2,...`` and one row per
    species, ``label,<d1>,<d2>,...``.
    """
    text = _read_text(source)
    rows = [row for row in csv.reader(_io.StringIO(text)) if row]
    if len(rows) < 2:
        raise MatrixValidationError("CSV matrix needs a header and data rows")
    header = [cell.strip() for cell in rows[0][1:]]
    n = len(header)
    labels: List[str] = []
    values = np.zeros((n, n))
    if len(rows) - 1 != n:
        raise MatrixValidationError(
            f"CSV header names {n} species, found {len(rows) - 1} rows"
        )
    for i, row in enumerate(rows[1:]):
        if len(row) != n + 1:
            raise MatrixValidationError(
                f"CSV row {i} has {len(row) - 1} values, expected {n}"
            )
        labels.append(row[0].strip())
        values[i] = [float(cell) for cell in row[1:]]
    if labels != header:
        raise MatrixValidationError("CSV row labels must match the header order")
    return DistanceMatrix(values, labels)


def write_csv_matrix(matrix: DistanceMatrix, destination: Union[PathLike, _io.TextIOBase]) -> None:
    """Write ``matrix`` as labelled CSV (inverse of :func:`read_csv_matrix`)."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([""] + matrix.labels)
    for i, label in enumerate(matrix.labels):
        writer.writerow([label] + [f"{matrix.values[i, j]:.17g}" for j in range(matrix.n)])
    text = buffer.getvalue()
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(text)
