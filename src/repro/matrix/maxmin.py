"""Max-min permutations (Step 1 of Algorithm BBU).

Both papers relabel the species so that ``(1, 2, ..., n)`` is a *max-min
permutation* before branch-and-bound starts: the first two species are a
farthest pair, and each subsequent species maximises its minimum distance
to the species already placed.  The relabeling front-loads the large
distances, which raises the lower bound of shallow branch-and-bound nodes
and lets the search prune earlier.
"""

from __future__ import annotations

import weakref
from typing import List, Tuple

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["maxmin_permutation", "apply_maxmin", "is_maxmin_permutation"]


def maxmin_permutation(matrix: DistanceMatrix) -> List[int]:
    """Return a max-min ordering of ``range(n)`` for ``matrix``.

    The ordering starts with a farthest pair and greedily appends the
    species whose minimum distance to the chosen prefix is largest.  Ties
    are broken by the smaller species index so the result is deterministic.
    """
    n = matrix.n
    if n == 0:
        return []
    if n == 1:
        return [0]
    v = matrix.values
    first, second, _ = matrix.max_pair()
    order = [first, second]
    chosen = np.zeros(n, dtype=bool)
    chosen[first] = chosen[second] = True
    # min distance from every unchosen species to the chosen prefix
    mins = np.minimum(v[:, first], v[:, second])
    while len(order) < n:
        masked = np.where(chosen, -np.inf, mins)
        nxt = int(np.argmax(masked))
        order.append(nxt)
        chosen[nxt] = True
        mins = np.minimum(mins, v[:, nxt])
    return order


#: ``matrix -> (ordered, permutation)`` keyed by matrix identity.  Every
#: solver front door calls :func:`apply_maxmin`; returning the *same*
#: reordered matrix object for repeated solves of one input lets the
#: per-matrix caches downstream (``repro.bnb.bounds.search_context``) hit
#: instead of recomputing half-matrices and tail bounds each time.
_MAXMIN_CACHE: "weakref.WeakKeyDictionary[DistanceMatrix, Tuple[DistanceMatrix, List[int]]]" = (
    weakref.WeakKeyDictionary()
)


def apply_maxmin(matrix: DistanceMatrix) -> Tuple[DistanceMatrix, List[int]]:
    """Relabel ``matrix`` into max-min order.

    Returns the reordered matrix together with the permutation, where
    ``permutation[p]`` is the original index of the species now at
    position ``p`` (so results can be mapped back to the caller's labels).
    Results are memoised per input-matrix object; matrices are treated as
    immutable throughout the pipeline, so the cache can never go stale.
    """
    cached = _MAXMIN_CACHE.get(matrix)
    if cached is None:
        order = maxmin_permutation(matrix)
        cached = (matrix.relabeled(order), order)
        _MAXMIN_CACHE[matrix] = cached
    ordered, order = cached
    return ordered, list(order)


def is_maxmin_permutation(matrix: DistanceMatrix) -> bool:
    """Check whether the identity ordering of ``matrix`` is max-min.

    Used by tests and by :func:`repro.bnb.sequential` to decide whether an
    input still needs relabeling.
    """
    n = matrix.n
    if n < 2:
        return True
    v = matrix.values
    if v[0, 1] + 1e-12 < matrix.max_distance():
        return False
    chosen = np.zeros(n, dtype=bool)
    chosen[0] = chosen[1] = True
    mins = np.minimum(v[:, 0], v[:, 1])
    for k in range(2, n):
        masked = np.where(chosen, -np.inf, mins)
        if mins[k] + 1e-12 < masked.max():
            return False
        chosen[k] = True
        mins = np.minimum(mins, v[:, k])
    return True
