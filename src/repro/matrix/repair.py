"""Metric repair for raw distance data.

The paper's random workloads draw integer distances uniformly from
``(0, 100]``; such draws generally violate the triangle inequality, yet
Algorithm BBU and its lower bounds assume a *metric* input (the Delta-MUT
problem).  The standard fix -- and the one we use for every random
workload -- is the shortest-path (Floyd-Warshall) closure: replace each
entry by the length of the shortest path between the two species in the
complete graph the matrix describes.  The closure is the largest metric
dominated by the input, so it perturbs the data as little as possible.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["metric_closure", "is_triangle_violating"]


def is_triangle_violating(matrix: DistanceMatrix) -> bool:
    """True when at least one triple violates the triangle inequality."""
    return not matrix.is_metric()


def metric_closure(matrix: DistanceMatrix) -> DistanceMatrix:
    """Return the shortest-path closure of ``matrix``.

    The result is the pointwise-largest metric ``M'`` with ``M' <= M``;
    entries already consistent with the triangle inequality are unchanged.
    Runs Floyd-Warshall in vectorised ``O(n^3)`` time, which is trivial at
    the matrix sizes branch-and-bound can face.
    """
    closed = matrix.values.copy()
    n = matrix.n
    for k in range(n):
        via_k = closed[:, k][:, None] + closed[k, :][None, :]
        np.minimum(closed, via_k, out=closed)
    np.fill_diagonal(closed, 0.0)
    # Symmetrise against floating point drift.
    closed = (closed + closed.T) / 2.0
    return DistanceMatrix(closed, matrix.labels, validate=False)
