"""Metric repair for raw distance data.

The paper's random workloads draw integer distances uniformly from
``(0, 100]``; such draws generally violate the triangle inequality, yet
Algorithm BBU and its lower bounds assume a *metric* input (the Delta-MUT
problem).  The standard fix -- and the one we use for every random
workload -- is the shortest-path (Floyd-Warshall) closure: replace each
entry by the length of the shortest path between the two species in the
complete graph the matrix describes.  The closure is the largest metric
dominated by the input, so it perturbs the data as little as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = [
    "metric_closure",
    "is_triangle_violating",
    "repair_with_report",
    "RepairReport",
]


def is_triangle_violating(matrix: DistanceMatrix) -> bool:
    """True when at least one triple violates the triangle inequality."""
    return not matrix.is_metric()


def metric_closure(matrix: DistanceMatrix) -> DistanceMatrix:
    """Return the shortest-path closure of ``matrix``.

    The result is the pointwise-largest metric ``M'`` with ``M' <= M``;
    entries already consistent with the triangle inequality are unchanged.
    Runs Floyd-Warshall in vectorised ``O(n^3)`` time, which is trivial at
    the matrix sizes branch-and-bound can face.
    """
    closed = matrix.values.copy()
    n = matrix.n
    for k in range(n):
        via_k = closed[:, k][:, None] + closed[k, :][None, :]
        np.minimum(closed, via_k, out=closed)
    np.fill_diagonal(closed, 0.0)
    # Symmetrise against floating point drift.
    closed = (closed + closed.T) / 2.0
    return DistanceMatrix(closed, matrix.labels, validate=False)


@dataclass(frozen=True)
class RepairReport:
    """How far the metric closure moved a raw distance matrix.

    Real distance data is never exactly tree-like (or even metric);
    following Cohen-Addad et al., the fitting error of the repair should
    be *measured and reported*, not silently absorbed.  Norms are over
    the perturbation ``raw - repaired`` (element-wise, off-diagonal):

    * ``max_perturbation`` -- largest single-entry change (L-inf);
    * ``frobenius`` -- Frobenius norm of the change;
    * ``relative`` -- Frobenius change divided by the Frobenius norm of
      the raw matrix (0.0 for an all-zero input);
    * ``entries_changed`` -- off-diagonal entries moved by more than a
      float tolerance.
    """

    was_metric: bool
    max_perturbation: float
    frobenius: float
    relative: float
    entries_changed: int

    def to_json(self) -> Dict[str, object]:
        return {
            "was_metric": self.was_metric,
            "max_perturbation": self.max_perturbation,
            "frobenius": self.frobenius,
            "relative": self.relative,
            "entries_changed": self.entries_changed,
        }


def repair_with_report(matrix: DistanceMatrix):
    """Metric-close ``matrix`` and quantify the applied perturbation.

    Returns ``(repaired, report)``.  The closure only ever *decreases*
    entries, so the perturbation norms are also a lower bound on how
    non-metric the input was.
    """
    was_metric = matrix.is_metric()
    repaired = metric_closure(matrix)
    delta = matrix.values - repaired.values
    raw_norm = float(np.linalg.norm(matrix.values))
    frobenius = float(np.linalg.norm(delta))
    report = RepairReport(
        was_metric=was_metric,
        max_perturbation=float(np.max(np.abs(delta))) if matrix.n else 0.0,
        frobenius=frobenius,
        relative=frobenius / raw_norm if raw_norm > 0 else 0.0,
        entries_changed=int(np.count_nonzero(np.abs(delta) > 1e-12)) // 2,
    )
    return repaired, report
