"""Workload generators for the paper's experiments.

Three families of matrices appear in the evaluation:

* **uniform random matrices** (PaCT Figures 8-9, HPCAsia Figures 5-8):
  integer distances drawn uniformly, made metric by shortest-path closure;
* **clustered matrices**: distances with explicit group structure so that
  every group is a compact set -- this is the regime in which the
  compact-set technique shines and is the synthetic stand-in for data with
  phylogenetic signal;
* **perturbed ultrametric matrices**: matrices of a random ultrametric tree
  with multiplicative noise, modelling near-clock-like evolution.

All generators accept either a seed or a ``numpy.random.Generator`` and are
fully deterministic given one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import metric_closure

__all__ = [
    "random_metric_matrix",
    "clustered_matrix",
    "hierarchical_matrix",
    "random_ultrametric_matrix",
    "perturbed_ultrametric_matrix",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_metric_matrix(
    n: int,
    seed: RngLike = None,
    *,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = True,
) -> DistanceMatrix:
    """Uniform random distances in ``[low, high]`` repaired into a metric.

    Mirrors the HPCAsia experiments: "randomly generated data sample set,
    the range of the data values is from 0 to 100".  The shortest-path
    closure may lower some entries, so the final values live in
    ``[low, high]`` but are no longer independent.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = _rng(seed)
    if integer:
        values = rng.integers(int(low), int(high) + 1, size=(n, n)).astype(float)
    else:
        values = rng.uniform(low, high, size=(n, n))
    values = np.triu(values, k=1)
    values = values + values.T
    matrix = DistanceMatrix(values, validate=False)
    return metric_closure(matrix)


def clustered_matrix(
    cluster_sizes: Sequence[int],
    seed: RngLike = None,
    *,
    within: Tuple[float, float] = (10.0, 30.0),
    between: Tuple[float, float] = (40.0, 70.0),
    labels: Optional[Sequence[str]] = None,
) -> DistanceMatrix:
    """A flat block matrix in which every block is a compact set.

    Distances inside a block are drawn from ``within`` and distances across
    blocks from ``between``.  Compactness of each block requires
    ``max(within) < min(between)``; metricity of the cross distances
    requires ``max(between) <= 2 * min(between)`` (any two cross edges
    support the third) and ``max(between) <= min(between) + min(within)``
    is not needed because within-distances only shorten paths.  Both are
    validated eagerly so misuse fails loudly.
    """
    if within[1] >= between[0]:
        raise ValueError(
            "compactness needs max(within) < min(between); "
            f"got within={within}, between={between}"
        )
    if between[1] > 2 * between[0]:
        raise ValueError(
            "metricity needs max(between) <= 2 * min(between); "
            f"got between={between}"
        )
    rng = _rng(seed)
    membership: List[int] = []
    for block, size in enumerate(cluster_sizes):
        if size < 1:
            raise ValueError("cluster sizes must be positive")
        membership.extend([block] * size)
    n = len(membership)
    values = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if membership[i] == membership[j]:
                d = rng.uniform(*within)
            else:
                d = rng.uniform(*between)
            values[i, j] = values[j, i] = d
    matrix = DistanceMatrix(values, labels, validate=False)
    return metric_closure(matrix)


def hierarchical_matrix(
    spec: Sequence,
    seed: RngLike = None,
    *,
    base: float = 8.0,
    gap: float = 2.5,
    jitter: float = 0.15,
    labels: Optional[Sequence[str]] = None,
) -> DistanceMatrix:
    """A nested-cluster matrix realising a laminar family of compact sets.

    ``spec`` is a nested list whose integer leaves are group sizes, e.g.
    ``[[3, 2], [4]]`` builds 9 species: a 5-species super-group split 3+2,
    and a 4-species group.  The distance between two species depends on the
    depth of their lowest common group: pairs separated near the root get
    roughly ``base * gap**depth_of_tree`` while pairs in the same innermost
    group get roughly ``base``.  With ``jitter`` small relative to ``gap``
    the distance bands of different levels do not overlap, so every group
    of the specification is a compact set of the resulting matrix (the
    property the decomposition tests rely on).
    """
    if gap <= 1.0:
        raise ValueError("gap must exceed 1 for the level bands to separate")
    if not 0.0 <= jitter < (gap - 1.0) / (gap + 1.0):
        raise ValueError(
            f"jitter={jitter} too large for gap={gap}; bands would overlap"
        )
    rng = _rng(seed)

    paths: List[Tuple[int, ...]] = []

    def walk(node, prefix: Tuple[int, ...]) -> None:
        if isinstance(node, int):
            if node < 1:
                raise ValueError("group sizes must be positive")
            for leaf in range(node):
                paths.append(prefix + (leaf,))
            return
        for child_index, child in enumerate(node):
            walk(child, prefix + (child_index,))

    walk(list(spec), ())
    n = len(paths)
    if n < 1:
        raise ValueError("specification describes no species")
    depth = max(len(p) for p in paths)

    values = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            shared = 0
            for a, b in zip(paths[i], paths[j]):
                if a != b:
                    break
                shared += 1
            # shared == depth-1 means same innermost group.
            level = depth - 1 - shared  # 0 = same group, larger = farther
            scale = base * gap ** level
            values[i, j] = values[j, i] = scale * (
                1.0 + rng.uniform(-jitter, jitter)
            )
    matrix = DistanceMatrix(values, labels, validate=False)
    return metric_closure(matrix)


def random_ultrametric_matrix(
    n: int,
    seed: RngLike = None,
    *,
    min_height: float = 1.0,
    max_height: float = 50.0,
) -> DistanceMatrix:
    """The exact distance matrix of a random ultrametric tree.

    Built by random agglomeration: repeatedly merge two random clusters at
    a height strictly above both, then set ``M[i, j] = 2 * height`` of the
    merge separating ``i`` and ``j``.  The result is ultrametric (hence
    metric) by construction; useful as a ground-truth input for which the
    minimum ultrametric tree cost is known analytically.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = _rng(seed)
    values = np.zeros((n, n))
    clusters: List[List[int]] = [[i] for i in range(n)]
    heights: List[float] = [0.0] * n
    while len(clusters) > 1:
        a, b = rng.choice(len(clusters), size=2, replace=False)
        a, b = int(min(a, b)), int(max(a, b))
        floor = max(heights[a], heights[b], min_height / 2.0)
        height = rng.uniform(floor, max(max_height / 2.0, floor * 1.5))
        if height <= floor:
            height = floor * 1.0001 + 1e-6
        for i in clusters[a]:
            for j in clusters[b]:
                values[i, j] = values[j, i] = 2.0 * height
        merged = clusters[a] + clusters[b]
        new_clusters = [
            c for k, c in enumerate(clusters) if k not in (a, b)
        ]
        new_heights = [
            h for k, h in enumerate(heights) if k not in (a, b)
        ]
        clusters = new_clusters + [merged]
        heights = new_heights + [height]
    return DistanceMatrix(values, validate=False)


def perturbed_ultrametric_matrix(
    n: int,
    seed: RngLike = None,
    *,
    noise: float = 0.1,
    min_height: float = 1.0,
    max_height: float = 50.0,
) -> DistanceMatrix:
    """An ultrametric matrix with multiplicative noise, re-repaired.

    Models near-clock-like evolution: start from
    :func:`random_ultrametric_matrix`, scale every entry by an independent
    factor in ``[1 - noise, 1]`` (shrinking only, so the closure stays
    close to the sample), then take the metric closure.
    """
    if not 0.0 <= noise < 1.0:
        raise ValueError("noise must be in [0, 1)")
    rng = _rng(seed)
    clean = random_ultrametric_matrix(
        n, rng, min_height=min_height, max_height=max_height
    )
    factors = rng.uniform(1.0 - noise, 1.0, size=(n, n))
    factors = np.triu(factors, k=1)
    factors = factors + factors.T
    np.fill_diagonal(factors, 1.0)
    noisy = DistanceMatrix(clean.values * factors, validate=False)
    return metric_closure(noisy)
