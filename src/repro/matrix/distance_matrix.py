"""The :class:`DistanceMatrix` container.

A distance matrix is the paper's only input model (PaCT 2005, Figure 1): a
symmetric ``n x n`` matrix with a zero diagonal whose entry ``M[i, j]`` is
the evolutionary distance between species ``i`` and ``j``.  The class wraps
a ``numpy`` array, carries optional species labels, and implements the
predicates of Definitions 1-3 of the companion paper:

* *distance matrix*  -- symmetric, non-negative, zero diagonal;
* *metric*           -- additionally satisfies the triangle inequality;
* *ultrametric*      -- ``M[i, j] <= max(M[i, k], M[j, k])`` for all triples.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["DistanceMatrix", "MatrixValidationError"]

#: Numerical slack used by the validation predicates.  Distances in the
#: paper are small integers, but our generators produce floats.
DEFAULT_TOLERANCE = 1e-9

Key = Union[int, str]


class MatrixValidationError(ValueError):
    """Raised when a matrix fails a structural validation check."""


class DistanceMatrix:
    """A symmetric species-by-species distance matrix.

    Parameters
    ----------
    values:
        Square array-like of distances.  Copied, stored as ``float64`` and
        frozen: the stored array is marked read-only, so the matrix is
        immutable after construction.  Several caches key off matrix
        identity (``bnb.bounds.search_context``,
        ``matrix.maxmin.apply_maxmin``) and would silently serve stale
        results if entries could change in place; any attempted write to
        :attr:`values` raises instead.
    labels:
        Optional species names; defaults to ``"s0", "s1", ...``.
    validate:
        When true (the default), reject inputs that are not valid distance
        matrices (non-square, asymmetric, negative entries, non-zero
        diagonal).  Metricity is *not* enforced here -- use
        :meth:`require_metric` -- because several intermediate products of
        the pipeline (e.g. *minimum* reduced matrices) are legitimately
        non-metric.
    """

    def __init__(
        self,
        values: Iterable[Iterable[float]],
        labels: Optional[Sequence[str]] = None,
        *,
        validate: bool = True,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        array = np.asarray(values, dtype=float).copy()
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise MatrixValidationError(
                f"distance matrix must be square, got shape {array.shape}"
            )
        # Freeze: identity-keyed caches depend on the values never
        # changing after construction.
        array.setflags(write=False)
        self._values = array
        self._tolerance = float(tolerance)
        if labels is None:
            labels = [f"s{i}" for i in range(array.shape[0])]
        labels = list(labels)
        if len(labels) != array.shape[0]:
            raise MatrixValidationError(
                f"{len(labels)} labels for a {array.shape[0]}-species matrix"
            )
        if len(set(labels)) != len(labels):
            raise MatrixValidationError("species labels must be unique")
        self._labels: List[str] = labels
        self._index = {name: i for i, name in enumerate(labels)}
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of species."""
        return self._values.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def values(self) -> np.ndarray:
        """The underlying ``(n, n)`` float array.

        Not a copy: the array is shared but frozen
        (``writeable=False``), so in-place mutation raises a numpy
        ``ValueError``.  Build a new :class:`DistanceMatrix` to change
        distances.
        """
        return self._values

    @property
    def labels(self) -> List[str]:
        """Species names, in index order."""
        return list(self._labels)

    def index_of(self, key: Key) -> int:
        """Resolve a species label (or pass through an integer index)."""
        if isinstance(key, str):
            try:
                return self._index[key]
            except KeyError:
                raise KeyError(f"unknown species label {key!r}") from None
        return int(key)

    def __getitem__(self, pair: Tuple[Key, Key]) -> float:
        i, j = pair
        return float(self._values[self.index_of(i), self.index_of(j)])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceMatrix):
            return NotImplemented
        return self._labels == other._labels and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash, see caches
        return id(self)

    def __repr__(self) -> str:
        return f"DistanceMatrix(n={self.n}, labels={self._labels[:4]}...)"

    def digest(self) -> str:
        """Content address of the matrix: a sha256 hex digest.

        Covers the shape, the labels (length-prefixed, so ``["ab", "c"]``
        and ``["a", "bc"]`` differ) and the raw little-endian float64
        entries.  Two matrices have equal digests exactly when ``==``
        holds, so the digest is a safe cache key across processes and
        restarts (unlike ``hash()``, which is identity-based).  Computed
        lazily and memoised: the values array is frozen, so the digest
        can never go stale.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(b"repro.DistanceMatrix.v1\x00")
            h.update(str(self.n).encode("ascii"))
            for label in self._labels:
                raw = label.encode("utf-8")
                h.update(str(len(raw)).encode("ascii") + b":" + raw)
            h.update(b"\x00values\x00")
            h.update(np.ascontiguousarray(self._values, dtype="<f8").tobytes())
            cached = self._digest = h.hexdigest()
        return cached

    # ------------------------------------------------------------------
    # validation predicates (Definitions 1-3)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the Definition-1 structural requirements.

        Raises :class:`MatrixValidationError` on the first violation found.
        """
        tol = self._tolerance
        v = self._values
        if not np.all(np.isfinite(v)):
            raise MatrixValidationError("matrix contains non-finite entries")
        if np.any(np.abs(np.diagonal(v)) > tol):
            raise MatrixValidationError("diagonal entries must be zero")
        if np.any(v < -tol):
            raise MatrixValidationError("distances must be non-negative")
        if not np.allclose(v, v.T, atol=tol, rtol=0.0):
            raise MatrixValidationError("matrix must be symmetric")

    def is_metric(self) -> bool:
        """Definition 2: does the matrix satisfy the triangle inequality?"""
        v = self._values
        tol = self._tolerance
        # M[i, k] <= M[i, j] + M[j, k] for all triples, vectorised: for
        # every j, the matrix of M[i, j] + M[j, k] must dominate M.
        for j in range(self.n):
            slack = v[:, j][:, None] + v[j, :][None, :] - v
            if np.any(slack < -tol):
                return False
        return True

    def require_metric(self) -> "DistanceMatrix":
        """Return ``self`` after asserting metricity."""
        if not self.is_metric():
            raise MatrixValidationError("matrix violates the triangle inequality")
        return self

    def is_ultrametric(self) -> bool:
        """Definition 3: ``M[i, j] <= max(M[i, k], M[j, k])`` for all triples.

        Equivalently, among the three pairwise distances of any triple the
        two largest are equal.
        """
        v = self._values
        tol = self._tolerance
        n = self.n
        for k in range(n):
            bound = np.maximum(v[:, k][:, None], v[k, :][None, :])
            mask = ~np.eye(n, dtype=bool)
            mask[:, k] = False
            mask[k, :] = False
            if np.any(v[mask] > bound[mask] + tol):
                return False
        return True

    # ------------------------------------------------------------------
    # derived matrices
    # ------------------------------------------------------------------
    def submatrix(self, keys: Sequence[Key]) -> "DistanceMatrix":
        """Restrict the matrix to ``keys`` (indices or labels), in order."""
        idx = [self.index_of(k) for k in keys]
        values = self._values[np.ix_(idx, idx)]
        labels = [self._labels[i] for i in idx]
        return DistanceMatrix(values, labels, validate=False)

    def relabeled(self, permutation: Sequence[int]) -> "DistanceMatrix":
        """Reorder species so that new position ``p`` holds old species
        ``permutation[p]`` (used to apply a max-min permutation)."""
        if sorted(permutation) != list(range(self.n)):
            raise MatrixValidationError(
                "relabeling requires a permutation of range(n)"
            )
        return self.submatrix(list(permutation))

    def with_labels(self, labels: Sequence[str]) -> "DistanceMatrix":
        """Return a copy of the matrix carrying new species names."""
        return DistanceMatrix(self._values, labels, validate=False)

    # ------------------------------------------------------------------
    # convenience queries used throughout the pipeline
    # ------------------------------------------------------------------
    def max_pair(self) -> Tuple[int, int, float]:
        """The farthest pair ``(i, j, distance)`` with ``i < j``."""
        if self.n < 2:
            raise MatrixValidationError("need at least two species")
        v = self._values
        iu = np.triu_indices(self.n, k=1)
        flat = int(np.argmax(v[iu]))
        i, j = int(iu[0][flat]), int(iu[1][flat])
        return i, j, float(v[i, j])

    def min_pair(self) -> Tuple[int, int, float]:
        """The closest distinct pair ``(i, j, distance)`` with ``i < j``."""
        if self.n < 2:
            raise MatrixValidationError("need at least two species")
        v = self._values
        iu = np.triu_indices(self.n, k=1)
        flat = int(np.argmin(v[iu]))
        i, j = int(iu[0][flat]), int(iu[1][flat])
        return i, j, float(v[i, j])

    def max_distance(self) -> float:
        """Largest pairwise distance in the matrix."""
        return self.max_pair()[2]

    def min_link(self, species: Key) -> float:
        """``min_j M[species, j]`` over all other species ``j``."""
        i = self.index_of(species)
        row = np.delete(self._values[i], i)
        return float(row.min()) if row.size else 0.0

    def pairs(self) -> Iterable[Tuple[int, int, float]]:
        """Iterate over all unordered pairs as ``(i, j, distance)``."""
        v = self._values
        for i in range(self.n):
            for j in range(i + 1, self.n):
                yield i, j, float(v[i, j])
