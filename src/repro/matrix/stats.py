"""Descriptive statistics and structure probes for distance matrices.

Before spending exponential time on a matrix, a user wants to know what
kind of instance it is: how far from a metric or an ultrametric, and --
decisive for this repository -- how much *compact-set structure* it
carries, since that structure is exactly what the decomposition
converts into speedup.  :func:`matrix_summary` gathers all of it;
:func:`structure_score` condenses the decomposition prospects into one
number in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = [
    "MatrixSummary",
    "matrix_summary",
    "structure_score",
    "ultrametricity_defect",
]


def ultrametricity_defect(matrix: DistanceMatrix) -> float:
    """How far the matrix is from ultrametric, as a relative defect.

    For each triple the two largest distances of an ultrametric matrix
    coincide; the defect of a triple is their relative gap, and the
    matrix defect is the mean over triples.  0 for ultrametric input;
    around 0.3+ for uniform random matrices.
    """
    n = matrix.n
    if n < 3:
        return 0.0
    v = matrix.values
    defects: List[float] = []
    for i, j, k in combinations(range(n), 3):
        sides = sorted((v[i, j], v[i, k], v[j, k]))
        if sides[2] <= 0:
            defects.append(0.0)
        else:
            defects.append((sides[2] - sides[1]) / sides[2])
    return float(np.mean(defects))


def structure_score(matrix: DistanceMatrix) -> float:
    """How decomposable the matrix is, in [0, 1].

    Defined as ``1 - (largest reduced matrix - 1) / (n - 1)``: 0 means
    the compact-set hierarchy leaves one subproblem as big as the input
    (decomposition buys nothing), 1 means every reduced matrix is a
    trivial pair.  Uniform random matrices score near 0; the clustered
    workloads of the paper score near 1.
    """
    n = matrix.n
    if n <= 2:
        return 1.0
    from repro.graph.hierarchy import CompactSetHierarchy

    hierarchy = CompactSetHierarchy.from_matrix(matrix)
    largest = hierarchy.max_subproblem_size()
    return 1.0 - (largest - 1) / (n - 1)


@dataclass(frozen=True)
class MatrixSummary:
    """Everything :func:`matrix_summary` measures."""

    n: int
    min_distance: float
    max_distance: float
    mean_distance: float
    is_metric: bool
    is_ultrametric: bool
    ultrametricity_defect: float
    compact_sets: int
    max_subproblem_size: int
    structure_score: float

    def describe(self) -> str:
        """A short human-readable report (used by ``repro-mut inspect``)."""
        lines = [
            f"species              : {self.n}",
            f"distance range       : [{self.min_distance:.4g}, "
            f"{self.max_distance:.4g}] mean {self.mean_distance:.4g}",
            f"metric               : {self.is_metric}",
            f"ultrametric          : {self.is_ultrametric} "
            f"(defect {self.ultrametricity_defect:.3f})",
            f"compact sets         : {self.compact_sets}",
            f"largest subproblem   : {self.max_subproblem_size} "
            f"(structure score {self.structure_score:.2f})",
        ]
        if self.structure_score >= 0.5:
            lines.append(
                "recommendation       : compact-set decomposition will pay off"
            )
        else:
            lines.append(
                "recommendation       : little compact structure; expect "
                "plain branch-and-bound effort"
            )
        return "\n".join(lines)


def matrix_summary(matrix: DistanceMatrix) -> MatrixSummary:
    """Measure ``matrix`` (structure probes included)."""
    n = matrix.n
    if n == 0:
        raise ValueError("cannot summarise an empty matrix")
    if n == 1:
        return MatrixSummary(
            n=1,
            min_distance=0.0,
            max_distance=0.0,
            mean_distance=0.0,
            is_metric=True,
            is_ultrametric=True,
            ultrametricity_defect=0.0,
            compact_sets=0,
            max_subproblem_size=1,
            structure_score=1.0,
        )
    iu = np.triu_indices(n, k=1)
    off_diagonal = matrix.values[iu]
    from repro.graph.compact_linear import find_compact_sets_fast
    from repro.graph.hierarchy import CompactSetHierarchy

    compact = find_compact_sets_fast(matrix)
    hierarchy = CompactSetHierarchy.from_sets(compact, n)
    largest = hierarchy.max_subproblem_size()
    return MatrixSummary(
        n=n,
        min_distance=float(off_diagonal.min()),
        max_distance=float(off_diagonal.max()),
        mean_distance=float(off_diagonal.mean()),
        is_metric=matrix.is_metric(),
        is_ultrametric=matrix.is_ultrametric(),
        ultrametricity_defect=ultrametricity_defect(matrix),
        compact_sets=len(compact),
        max_subproblem_size=largest,
        structure_score=1.0 - (largest - 1) / (n - 1) if n > 2 else 1.0,
    )
