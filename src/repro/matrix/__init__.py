"""Distance-matrix substrate.

This subpackage supplies everything the paper assumes about its input: the
:class:`~repro.matrix.distance_matrix.DistanceMatrix` container with the
symmetry / metricity / ultrametricity predicates of the paper's Definitions
1-3, the max-min permutation used by Algorithm BBU, random and clustered
workload generators, metric repair, and PHYLIP/CSV I/O.
"""

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import maxmin_permutation
from repro.matrix.repair import metric_closure, is_triangle_violating
from repro.matrix.generators import (
    random_metric_matrix,
    clustered_matrix,
    perturbed_ultrametric_matrix,
)
from repro.matrix.stats import (
    MatrixSummary,
    matrix_summary,
    structure_score,
    ultrametricity_defect,
)
from repro.matrix.io import (
    read_phylip,
    write_phylip,
    read_csv_matrix,
    write_csv_matrix,
)

__all__ = [
    "DistanceMatrix",
    "maxmin_permutation",
    "metric_closure",
    "is_triangle_violating",
    "random_metric_matrix",
    "clustered_matrix",
    "perturbed_ultrametric_matrix",
    "MatrixSummary",
    "matrix_summary",
    "structure_score",
    "ultrametricity_defect",
    "read_phylip",
    "write_phylip",
    "read_csv_matrix",
    "write_csv_matrix",
]
