"""B&B branching benchmark: batched kernel vs the scalar reference loop.

Times a full sequential Algorithm-BBU solve with the batched branching
kernel (:class:`repro.bnb.kernel.BranchKernel`, the production path)
against the same solve with ``use_kernel=False`` (the original per-child
scalar loop, kept as the differential oracle), verifies the two searches
are *bit-identical* (same cost, same node counts), and writes a
machine-readable ``BENCH_bnb.json``.

Workloads are the papers' shapes, not the pipeline's: hierarchical
matrices *decompose* into tiny subproblems under the compact-set
pipeline, so the branching hot loop is exercised by solving the full
matrix with plain ``exact_mut``.

* 26 species (the HMDNA-26 scale), solved to optimality;
* 38 species (the HMDNA-38 scale) with a 20k node-expansion cap -- the
  full solve is infeasible in pure Python, and because both paths make
  bit-identical decisions they expand the *same* 20k nodes, so the
  wall-clock ratio is a fair branching-speed measure.

Usage::

    PYTHONPATH=src python benchmarks/bench_bnb.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_bnb.py --smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_bnb.py --out path.json
    PYTHONPATH=src python benchmarks/bench_bnb.py --db campaigns.sqlite

The acceptance gate for the branching overhaul is a >= 5x speedup on the
26-species full solve; ``acceptance.speedup_26`` records the measured
value (absent in ``--smoke`` mode, which caps every workload).

The report also measures the cost of *live progress telemetry*
(``progress_overhead``): the first workload is re-solved with a
:class:`~repro.obs.progress.ProgressTracker` installed, alternating
enabled/disabled runs and comparing minima.  The budget is < 3% on
kernel solves (``docs/observability.md``); the measured percentage is
recorded, not gated, because sub-second smoke solves are noise-bound.

``--db`` additionally upserts the per-workload numbers into a campaign
run database (stable workload-name case ids, engine fingerprint
stamped), so ``repro-mut campaign trend`` charts bench history across
engine versions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import hierarchical_matrix

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_bnb.json"

#: (name, generator groups, seed, node_limit) -- node_limit None means
#: solve to proven optimality.
FULL_WORKLOADS = (
    ("hmdna26-full", [[7, 6], [7, 6]], 126, None),
    ("hmdna38-capped", [[7, 6], [6, 6], [7, 6]], 38, 20000),
)
SMOKE_WORKLOADS = (
    ("hmdna26-smoke", [[7, 6], [7, 6]], 126, 1500),
)


def _timed_solve(matrix, *, use_kernel, node_limit):
    t0 = time.perf_counter()
    result = exact_mut(matrix, use_kernel=use_kernel, node_limit=node_limit)
    return time.perf_counter() - t0, result


def measure_progress_overhead(matrix, *, node_limit, repeats=3):
    """Cost of a live :class:`ProgressTracker` on a kernel solve.

    Alternates tracker-disabled and tracker-enabled solves (so thermal /
    cache drift hits both arms equally) and compares the per-arm minima
    -- the same min-of-interleaved-runs discipline the service metrics
    overhead bench uses.  The tracker runs at the production default
    interval with no recorder attached: what ``--progress`` or a serving
    process pays in the solver itself.
    """
    from repro.obs.progress import ProgressTracker, progress_context

    disabled, enabled = [], []
    heartbeats = 0
    for _ in range(repeats):
        seconds, _result = _timed_solve(
            matrix, use_kernel=True, node_limit=node_limit
        )
        disabled.append(seconds)
        tracker = ProgressTracker()
        with progress_context(tracker):
            seconds, _result = _timed_solve(
                matrix, use_kernel=True, node_limit=node_limit
            )
        enabled.append(seconds)
        heartbeats = tracker.reports
    base, tracked = min(disabled), min(enabled)
    return {
        "disabled_seconds": base,
        "enabled_seconds": tracked,
        "overhead_percent": (
            100.0 * (tracked - base) / base if base > 0 else 0.0
        ),
        "heartbeats": heartbeats,
        "repeats": repeats,
        "target_max_percent": 3.0,
    }


def run(workloads) -> dict:
    results = []
    for name, groups, seed, node_limit in workloads:
        matrix = hierarchical_matrix(groups, seed=seed, jitter=0.3)
        fast_s, fast = _timed_solve(
            matrix, use_kernel=True, node_limit=node_limit
        )
        ref_s, ref = _timed_solve(
            matrix, use_kernel=False, node_limit=node_limit
        )
        # Bit-identical, not approximately equal: the kernel's contract
        # is that no search decision changes.
        if fast.cost != ref.cost:
            raise AssertionError(
                f"cost mismatch on {name}: "
                f"kernel={fast.cost!r} scalar={ref.cost!r}"
            )
        for stat in ("nodes_expanded", "nodes_created", "nodes_pruned"):
            if getattr(fast.stats, stat) != getattr(ref.stats, stat):
                raise AssertionError(
                    f"search divergence on {name}: {stat} "
                    f"kernel={getattr(fast.stats, stat)} "
                    f"scalar={getattr(ref.stats, stat)}"
                )
        row = {
            "workload": name,
            "n": matrix.n,
            "node_limit": node_limit,
            "optimal": fast.optimal,
            "cost": fast.cost,
            "nodes_expanded": fast.stats.nodes_expanded,
            "nodes_created": fast.stats.nodes_created,
            "prune_fraction": (
                fast.stats.nodes_pruned / fast.stats.nodes_created
            ),
            "kernel_seconds": fast_s,
            "scalar_seconds": ref_s,
            "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        }
        results.append(row)
        print(
            f"{name:16s} n={matrix.n:3d}  kernel={fast_s:8.3f} s  "
            f"scalar={ref_s:8.3f} s  speedup={row['speedup']:5.2f}x  "
            f"expanded={fast.stats.nodes_expanded}"
        )
    first_name, first_groups, first_seed, first_limit = workloads[0]
    overhead = measure_progress_overhead(
        hierarchical_matrix(first_groups, seed=first_seed, jitter=0.3),
        node_limit=first_limit,
    )
    overhead["workload"] = first_name
    print(
        f"progress overhead on {first_name}: "
        f"{overhead['overhead_percent']:+.2f}% "
        f"({overhead['heartbeats']} heartbeat(s); "
        f"budget {overhead['target_max_percent']:.0f}%)"
    )
    report = {
        "benchmark": "bnb-batched-branching-kernel",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
        "progress_overhead": overhead,
    }
    by_name = {r["workload"]: r for r in results}
    if "hmdna26-full" in by_name:
        speedup = by_name["hmdna26-full"]["speedup"]
        report["acceptance"] = {
            "speedup_26": speedup,
            "required_min_speedup": 5.0,
            "passed": speedup >= 5.0,
        }
        if "hmdna38-capped" in by_name:
            report["acceptance"]["speedup_38_capped"] = (
                by_name["hmdna38-capped"]["speedup"]
            )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one node-capped workload only (CI smoke mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="also upsert the results into this campaign run database "
             "(repro-mut campaign trend charts them across versions)",
    )
    args = parser.parse_args(argv)
    workloads = SMOKE_WORKLOADS if args.smoke else FULL_WORKLOADS
    report = run(workloads)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.db:
        from _benchdb import persist_bench_results

        name = persist_bench_results(
            args.db,
            bench="bench-bnb",
            rows=[
                {
                    "case_id": r["workload"],
                    "method": "bnb",
                    "n": r["n"],
                    "cost": r["cost"],
                    "options": {"node_limit": r["node_limit"]},
                    "wall_seconds": r["kernel_seconds"],
                    "solve_seconds": r["kernel_seconds"],
                    "nodes_expanded": r["nodes_expanded"],
                    "counters": {
                        "bench.scalar_seconds": r["scalar_seconds"],
                        "bench.speedup": r["speedup"],
                        "bench.prune_fraction": r["prune_fraction"],
                    },
                }
                for r in report["results"]
            ],
        )
        print(f"upserted {len(report['results'])} case(s) into {args.db} "
              f"as campaign {name!r}")
    acceptance = report.get("acceptance")
    if acceptance is not None and not acceptance["passed"]:
        print(
            "ACCEPTANCE FAILED: 26-species speedup below 5x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
