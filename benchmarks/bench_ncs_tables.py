"""NSC report (NCS2005), Tables 3-5: median / average / worst times.

The report quotes three statistics per species count over batches of
datasets because branch-and-bound effort is violently
instance-dependent ("不同 distance matrices ... lead to different
performance"; the report even picks the *median* as its headline metric
for that reason).  This bench reproduces the table structure with the
BatchRunner over batches of synthetic HMDNA matrices.
"""

import pytest

from repro.core.batch import BatchRunner
from repro.sequences.hmdna import hmdna_matrices

from benchmarks.common import once, record_series

SWEEP = (12, 16, 20)
DATASETS = 5


def _batch(n):
    return [d.matrix for d in hmdna_matrices(n, DATASETS, seed=500 + n)]


@pytest.mark.parametrize("n", SWEEP)
def test_ncs_tables_species(benchmark, n):
    matrices = _batch(n)
    runner = BatchRunner(
        ["bnb", "compact", "upgmm"],
        method_options={"compact": {"max_exact_size": 16}},
    )

    def run():
        return runner.run(matrices)

    report = once(benchmark, run)
    record_series(
        "ncs_tables",
        f"n={n} ({DATASETS} datasets)",
        [agg.row() for agg in report.aggregates()],
    )
    # Median exact time dominates median worst time, by definition.
    bnb = report.aggregate("bnb")
    assert bnb.median_seconds <= bnb.worst_seconds
    # Exact search never loses to the heuristics on cost.
    for i in range(DATASETS):
        assert report.costs["bnb"][i] <= report.costs["compact"][i] + 1e-9
        assert report.costs["compact"][i] <= report.costs["upgmm"][i] + 1e-9


def test_ncs_median_vs_worst_spread(benchmark):
    """The instance-dependence the report highlights: worst-case time
    visibly exceeds the median on at least one sweep point."""

    def compute():
        spreads = []
        for n in SWEEP:
            report = BatchRunner(["bnb"]).run(_batch(n))
            agg = report.aggregate("bnb")
            spreads.append((n, agg.median_seconds, agg.worst_seconds))
        return spreads

    spreads = once(benchmark, compute)
    record_series(
        "ncs_tables",
        "median vs worst (bnb)",
        [
            f"n={n}: median={med:.4f}s worst={worst:.4f}s"
            for n, med, worst in spreads
        ],
    )
    assert any(worst > med * 1.2 for _, med, worst in spreads)
