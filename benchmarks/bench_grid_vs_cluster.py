"""NSC report (NCS2005 paper), Tables 3-6: single machine vs cluster vs grid.

The project's second-year report benchmarks the same parallel B&B on
three environments: one PC, the dedicated 16-node cluster, and the
UniGrid national grid testbed (donated, heterogeneous machines behind
Internet-grade latency).  Findings reproduced here:

* both parallel environments beat the single machine as species grow
  (Table 3 / 圖4);
* at equal node counts the grid is somewhat slower than the cluster
  ("網格並無任何優勢... 效能較叢集電腦差") because its interconnect is
  the Internet (Table 6);
* a 24-node grid overtakes the 16-node cluster ("如果網格使用24節點，
  則效能遠超過叢集電腦16節點") -- more donated nodes buy back the
  latency (Table 6 / 圖7).
"""

import pytest

from repro.parallel.config import ClusterConfig, grid_config
from repro.parallel.simulator import ParallelBranchAndBound

from benchmarks.common import once, pbb_random_matrix, record_series

ENVIRONMENTS = {
    "single": ClusterConfig(n_workers=1),
    "cluster-16": ClusterConfig(n_workers=16),
    "grid-16": grid_config(16),
    "grid-24": grid_config(24),
}
SWEEP = (12, 14, 16)


@pytest.mark.parametrize("environment", sorted(ENVIRONMENTS))
def test_table3_environment_sweep(benchmark, environment):
    cfg = ENVIRONMENTS[environment]

    def run():
        return {
            n: ParallelBranchAndBound(cfg).solve(pbb_random_matrix(n))
            for n in SWEEP
        }

    results = once(benchmark, run)
    record_series(
        "grid_vs_cluster",
        f"environment={environment}",
        [
            f"n={n}: makespan={r.makespan:.0f} nodes={r.total_nodes_expanded}"
            for n, r in results.items()
        ],
    )


def test_table6_grid_node_count(benchmark):
    n = SWEEP[-1]

    def run():
        return {
            name: ParallelBranchAndBound(cfg).solve(pbb_random_matrix(n))
            for name, cfg in ENVIRONMENTS.items()
        }

    results = once(benchmark, run)
    record_series(
        "grid_vs_cluster",
        f"Table 6 summary (n={n})",
        [
            f"{name}: makespan={r.makespan:.0f}"
            for name, r in results.items()
        ],
    )
    # Same optimum everywhere.
    costs = {round(r.cost, 6) for r in results.values()}
    assert len(costs) == 1
    # Both parallel environments beat the single machine decisively.
    assert results["cluster-16"].makespan < results["single"].makespan / 4
    assert results["grid-16"].makespan < results["single"].makespan / 4
    # Equal node count: the cluster's fast interconnect wins.
    assert results["cluster-16"].makespan < results["grid-16"].makespan
    # More grid nodes overtake the smaller cluster.
    assert results["grid-24"].makespan < results["cluster-16"].makespan
