"""Ablation: compact-set discovery cost.

The paper's Algorithm *Compact Sets* re-examines the whole matrix after
every Kruskal merge (O(n^3) total); it cites Liang's O(n^2) method as
the efficient alternative.  This bench times both on the same matrices
-- the only benchmark here that exercises multiple timing rounds, since
discovery is milliseconds rather than seconds.
"""

import pytest

from repro.graph.compact_linear import find_compact_sets_fast
from repro.graph.compact_sets import find_compact_sets
from repro.matrix.generators import hierarchical_matrix

from benchmarks.common import record_series

SIZES = (24, 48)


def _matrix(n):
    spec = {24: [[6, 6], [6, 6]], 48: [[12, 12], [12, 12]]}[n]
    return hierarchical_matrix(spec, seed=5, jitter=0.25)


@pytest.mark.parametrize("n", SIZES)
def test_discovery_scan(benchmark, n):
    matrix = _matrix(n)
    result = benchmark(find_compact_sets, matrix)
    record_series(
        "ablation_discovery",
        f"paper scan (O(n^3)) n={n}",
        [f"compact_sets={len(result)}"],
    )


@pytest.mark.parametrize("n", SIZES)
def test_discovery_fast(benchmark, n):
    matrix = _matrix(n)
    result = benchmark(find_compact_sets_fast, matrix)
    record_series(
        "ablation_discovery",
        f"Liang-style (O(n^2)) n={n}",
        [f"compact_sets={len(result)}"],
    )
    assert result == find_compact_sets(matrix)
