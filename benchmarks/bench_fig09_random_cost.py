"""PaCT 2005, Figure 9: total tree cost on random data.

Series: total tree cost with vs without compact sets.  The paper reports
the two curves nearly coincide, with a difference below 5%; the
reproduction asserts exactly that bound.
"""

from benchmarks.common import FIG8_SIZES, fig8_compact, fig8_exact, once, record_series


def test_fig09_total_tree_cost(benchmark):
    def compute():
        rows = []
        for n in FIG8_SIZES:
            compact = fig8_compact(n).cost
            optimal = fig8_exact(n).cost
            rows.append((n, compact, optimal, compact / optimal - 1.0))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "fig09_random_cost",
        "total tree cost: compact vs without",
        [
            f"n={n}: compact={c:.2f} without={o:.2f} diff={100 * d:+.2f}%"
            for n, c, o, d in rows
        ],
    )
    for n, compact, optimal, diff in rows:
        assert compact >= optimal - 1e-9, "compact tree cannot beat the optimum"
        assert diff < 0.05, f"cost difference {diff:.2%} exceeds the paper's 5% at n={n}"
