"""Ablation: cluster size sweep (p = 1, 2, 4, 8, 16).

Extends the papers' 16-vs-1 comparison into a scaling curve, on the
heaviest random instance of the battery.
"""

import pytest

from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound

from benchmarks.common import once, pbb_random_matrix, record_series

WORKER_COUNTS = (1, 2, 4, 8, 16)
N = 16


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_ablation_cluster_size(benchmark, workers):
    matrix = pbb_random_matrix(N)
    cfg = ClusterConfig(n_workers=workers)

    def run():
        return ParallelBranchAndBound(cfg).solve(matrix)

    result = once(benchmark, run)
    record_series(
        "ablation_cluster_size",
        f"p={workers} (n={N})",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"nodes={result.total_nodes_expanded}",
            f"efficiency={result.efficiency():.2f}",
        ],
    )


def test_ablation_scaling_curve(benchmark):
    def compute():
        matrix = pbb_random_matrix(N)
        rows = []
        for p in WORKER_COUNTS:
            result = ParallelBranchAndBound(
                ClusterConfig(n_workers=p)
            ).solve(matrix)
            rows.append((p, result))
        return rows

    rows = once(benchmark, compute)
    base = rows[0][1].makespan
    record_series(
        "ablation_cluster_size",
        "scaling summary",
        [
            f"p={p}: makespan={r.makespan:.0f} speedup={base / r.makespan:.2f}"
            for p, r in rows
        ],
    )
    # Monotone improvement up the sweep (with 5% slack for scheduling noise).
    for (p_small, small), (p_big, big) in zip(rows, rows[1:]):
        assert big.makespan <= small.makespan * 1.05
    # The full cluster is far better than one worker.
    assert base / rows[-1][1].makespan > 4.0
