"""HPCAsia 2005, Figure 4: 16 processors, with vs without 3-3
relationship, HMDNA.

The 3-3 constraint prunes the initial branching; the paper found it
"can reduce computing time when number of species grows" while keeping
the same result trees.
"""

import pytest

from benchmarks.common import PBB_HMDNA_SIZES, once, pbb_simulation, record_series


def test_pbb_fig4_33_relationship_hmdna(benchmark):
    def compute():
        rows = []
        for n in PBB_HMDNA_SIZES:
            without = pbb_simulation("hmdna", n, 16, False)
            with_33 = pbb_simulation("hmdna", n, 16, True)
            rows.append((n, without, with_33))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "pbb_fig4_33relationship",
        "16 processors, HMDNA, 3-3 relationship",
        [
            f"n={n}: makespan without={w.makespan:.0f} with={w33.makespan:.0f} "
            f"nodes without={w.total_nodes_expanded} with={w33.total_nodes_expanded}"
            for n, w, w33 in rows
        ],
    )
    for n, without, with_33 in rows:
        # Same optimum (the paper: "have the same results")...
        assert with_33.cost == pytest.approx(without.cost)
        # ...and no more search effort.
        assert (
            with_33.total_nodes_expanded
            <= without.total_nodes_expanded + 16  # dispatch jitter allowance
        )
