"""Ablation: lower-bound strength.

DESIGN.md calls out the choice of lower bound as the pruning engine of
Algorithm BBU.  This bench compares the three tails on the same
instances: the paper's min-front bound must expand no more nodes than
min-link, which must expand no more than the trivial bound.
"""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import random_metric_matrix

from benchmarks.common import once, record_series

BOUNDS = ("trivial", "minlink", "minfront")
INSTANCE_SEEDS = (42, 7, 11)
N = 11


@pytest.mark.parametrize("bound", BOUNDS)
def test_ablation_lower_bound(benchmark, bound):
    matrices = [random_metric_matrix(N, seed=s) for s in INSTANCE_SEEDS]

    def run():
        return [exact_mut(m, lower_bound=bound) for m in matrices]

    results = once(benchmark, run)
    record_series(
        "ablation_bounds",
        f"bound={bound} (n={N})",
        [
            f"seed={seed}: nodes={r.stats.nodes_expanded} "
            f"time_s={r.stats.elapsed_seconds:.4f} cost={r.cost:.2f}"
            for seed, r in zip(INSTANCE_SEEDS, results)
        ],
    )


def test_ablation_bounds_ordering(benchmark):
    def compute():
        rows = []
        for seed in INSTANCE_SEEDS:
            m = random_metric_matrix(N, seed=seed)
            nodes = {
                bound: exact_mut(m, lower_bound=bound).stats.nodes_expanded
                for bound in BOUNDS
            }
            rows.append((seed, nodes))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "ablation_bounds",
        "ordering summary",
        [
            f"seed={seed}: trivial={n['trivial']} minlink={n['minlink']} "
            f"minfront={n['minfront']}"
            for seed, n in rows
        ],
    )
    for _, nodes in rows:
        assert nodes["minfront"] <= nodes["minlink"] <= nodes["trivial"]
