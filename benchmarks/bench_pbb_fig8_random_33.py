"""HPCAsia 2005, Figure 8: 16 processors, with vs without 3-3
relationship, random data."""

import pytest

from benchmarks.common import PBB_RANDOM_SIZES, once, pbb_simulation, record_series


def test_pbb_fig8_33_relationship_random(benchmark):
    def compute():
        rows = []
        for n in PBB_RANDOM_SIZES:
            without = pbb_simulation("random", n, 16, False)
            with_33 = pbb_simulation("random", n, 16, True)
            rows.append((n, without, with_33))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "pbb_fig8_random_33",
        "16 processors, random data, 3-3 relationship",
        [
            f"n={n}: makespan without={w.makespan:.0f} with={w33.makespan:.0f} "
            f"nodes without={w.total_nodes_expanded} with={w33.total_nodes_expanded}"
            for n, w, w33 in rows
        ],
    )
    for n, without, with_33 in rows:
        assert with_33.cost == pytest.approx(without.cost)
