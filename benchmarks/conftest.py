"""Benchmark-session setup: start each run with a clean results folder."""

from __future__ import annotations

import shutil

import pytest

from benchmarks.common import RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def fresh_results_dir():
    """Wipe benchmarks/results/ once per session so series do not pile up."""
    if RESULTS_DIR.exists():
        shutil.rmtree(RESULTS_DIR)
    RESULTS_DIR.mkdir()
    yield
