"""HPCAsia 2005, Figure 2: computing time for a single processor, HMDNA.

The single-worker simulation of the same instances; together with
Figure 1 this yields the speedup curves of Figure 3.
"""

import pytest

from benchmarks.common import PBB_HMDNA_SIZES, once, pbb_simulation, record_series


@pytest.mark.parametrize("n", PBB_HMDNA_SIZES)
def test_pbb_fig2_single_processor_hmdna(benchmark, n):
    result = once(benchmark, pbb_simulation, "hmdna", n, 1)
    record_series(
        "pbb_fig2_sequential_time",
        f"single processor, HMDNA n={n}",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"nodes_expanded={result.total_nodes_expanded}",
        ],
    )
    assert result.cost > 0
