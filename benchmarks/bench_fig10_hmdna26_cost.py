"""PaCT 2005, Figure 10: total tree cost of 15 x 26-species HMDNA sets.

The paper reports a maximum cost difference of 1.5% between trees built
with and without compact sets on Human Mitochondrial DNA data.  The
synthetic HMDNA battery reproduces the bound.
"""

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder

from benchmarks.common import hmdna26_batch, once, record_series


def test_fig10_total_tree_cost(benchmark):
    def compute():
        builder = CompactSetTreeBuilder(max_exact_size=16)
        rows = []
        for dataset in hmdna26_batch():
            compact = builder.build(dataset.matrix)
            plain = exact_mut(dataset.matrix, node_limit=500_000)
            rows.append(
                (dataset.name, compact.cost, plain.cost, compact.cost / plain.cost - 1)
            )
        return rows

    rows = once(benchmark, compute)
    record_series(
        "fig10_hmdna26_cost",
        "total tree cost over 15 x 26-species HMDNA sets",
        [
            f"{name}: compact={c:.2f} without={p:.2f} diff={100 * d:+.3f}%"
            for name, c, p, d in rows
        ],
    )
    worst = max(d for _, _, _, d in rows)
    record_series(
        "fig10_hmdna26_cost", "summary", [f"max_diff={100 * worst:.3f}% (paper: 1.5%)"]
    )
    assert worst <= 0.015 + 1e-9
