"""HPCAsia 2005, Figure 6: speedup, 16 vs 1 processor, random data.

This is where the paper's super-linear claim is most visible: on random
matrices the parallel frontier finds good upper bounds early, pruning
nodes the sequential order would have expanded.
"""

from benchmarks.common import PBB_RANDOM_SIZES, once, pbb_simulation, record_series


def test_pbb_fig6_speedup_random(benchmark):
    def compute():
        rows = []
        for n in PBB_RANDOM_SIZES:
            sequential = pbb_simulation("random", n, 1)
            parallel = pbb_simulation("random", n, 16)
            rows.append(
                (
                    n,
                    sequential.makespan / parallel.makespan,
                    sequential.total_nodes_expanded,
                    parallel.total_nodes_expanded,
                )
            )
        return rows

    rows = once(benchmark, compute)
    record_series(
        "pbb_fig6_random_speedup",
        "speedup (16 vs 1 processor), random data",
        [
            f"n={n}: speedup={s:.2f} nodes_1p={n1} nodes_16p={n16}"
            for n, s, n1, n16 in rows
        ],
    )
    # The largest instance must show substantial parallel benefit.
    assert rows[-1][1] > 4.0


def test_pbb_fig6_superlinear_exists(benchmark):
    """Some (instance, p) pair beats linear speedup -- the paper's claim."""

    def compute():
        hits = []
        for n in PBB_RANDOM_SIZES:
            sequential = pbb_simulation("random", n, 1)
            for p in (2, 4):
                from repro.parallel.config import ClusterConfig
                from repro.parallel.simulator import ParallelBranchAndBound

                from benchmarks.common import pbb_random_matrix

                parallel = ParallelBranchAndBound(
                    ClusterConfig(n_workers=p)
                ).solve(pbb_random_matrix(n))
                speedup = sequential.makespan / parallel.makespan
                if speedup > p:
                    hits.append((n, p, speedup))
        return hits

    hits = once(benchmark, compute)
    record_series(
        "pbb_fig6_random_speedup",
        "super-linear cases (speedup > p)",
        [f"n={n} p={p}: speedup={s:.2f}" for n, p, s in hits] or ["none"],
    )
    assert hits, "expected at least one super-linear case in the battery"
