"""PaCT 2005, Figure 12: total tree cost of 10 x 30-DNA sets.

"Using compact sets could keep the cost down when we experiment on 30
DNAs as well as generated data or 26 DNAs" -- the cost gap stays within
the same small band at 30 species.
"""

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder

from benchmarks.common import hmdna30_batch, once, record_series


def test_fig12_total_tree_cost(benchmark):
    def compute():
        builder = CompactSetTreeBuilder(max_exact_size=16)
        rows = []
        for dataset in hmdna30_batch():
            compact = builder.build(dataset.matrix)
            plain = exact_mut(dataset.matrix, node_limit=500_000)
            rows.append(
                (dataset.name, compact.cost, plain.cost, compact.cost / plain.cost - 1)
            )
        return rows

    rows = once(benchmark, compute)
    record_series(
        "fig12_hmdna30_cost",
        "total tree cost over 10 x 30-DNA sets",
        [
            f"{name}: compact={c:.2f} without={p:.2f} diff={100 * d:+.3f}%"
            for name, c, p, d in rows
        ],
    )
    worst = max(d for _, _, _, d in rows)
    record_series(
        "fig12_hmdna30_cost", "summary", [f"max_diff={100 * worst:.3f}%"]
    )
    assert worst <= 0.015 + 1e-9
