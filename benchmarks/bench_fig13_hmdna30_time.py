"""PaCT 2005, Figure 13: computing time of 30-DNA sets.

"For computing time, the performances of the experiments on both 26 and
30 DNAs are alike" -- both stay small for clock-like data.
"""

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder

from benchmarks.common import hmdna26_batch, hmdna30_batch, once, record_series


def test_fig13_with_compact_sets(benchmark):
    builder = CompactSetTreeBuilder(max_exact_size=16)

    def run():
        return [builder.build(d.matrix) for d in hmdna30_batch()]

    results = once(benchmark, run)
    record_series(
        "fig13_hmdna30_time",
        "with compact sets (per data set)",
        [
            f"{d.name}: time_s={r.elapsed_seconds:.4f} maxsub={r.max_subproblem_size}"
            for d, r in zip(hmdna30_batch(), results)
        ],
    )


def test_fig13_without_compact_sets(benchmark):
    def run():
        return [
            exact_mut(d.matrix, node_limit=500_000) for d in hmdna30_batch()
        ]

    results = once(benchmark, run)
    record_series(
        "fig13_hmdna30_time",
        "without compact sets (per data set)",
        [
            f"{d.name}: time_s={r.stats.elapsed_seconds:.4f} nodes={r.stats.nodes_expanded}"
            for d, r in zip(hmdna30_batch(), results)
        ],
    )


def test_fig13_26_vs_30_alike(benchmark):
    """Paper: performance at 26 and 30 DNAs is alike (same order)."""

    def compute():
        builder = CompactSetTreeBuilder(max_exact_size=16)
        t26 = [builder.build(d.matrix).elapsed_seconds for d in hmdna26_batch()]
        t30 = [builder.build(d.matrix).elapsed_seconds for d in hmdna30_batch()]
        return sum(t26) / len(t26), sum(t30) / len(t30)

    avg26, avg30 = once(benchmark, compute)
    record_series(
        "fig13_hmdna30_time",
        "summary: average compact-set time",
        [f"26 species: {avg26:.4f}s", f"30 species: {avg30:.4f}s"],
    )
    # "Alike": within one order of magnitude of each other.
    assert avg30 < avg26 * 10
