"""Ablation: the max-min permutation (BBU Step 1).

Relabeling front-loads the large distances so shallow BBT levels carry
tight bounds.  Disabling it must never change the optimum, and on
average it inflates the search.
"""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import random_metric_matrix

from benchmarks.common import once, record_series

INSTANCE_SEEDS = (42, 7, 11, 23)
N = 11


@pytest.mark.parametrize("use_maxmin", [True, False], ids=["maxmin", "identity"])
def test_ablation_maxmin(benchmark, use_maxmin):
    matrices = [random_metric_matrix(N, seed=s) for s in INSTANCE_SEEDS]

    def run():
        return [exact_mut(m, use_maxmin=use_maxmin) for m in matrices]

    results = once(benchmark, run)
    label = "with max-min" if use_maxmin else "identity order"
    record_series(
        "ablation_maxmin",
        f"{label} (n={N})",
        [
            f"seed={seed}: nodes={r.stats.nodes_expanded} cost={r.cost:.2f}"
            for seed, r in zip(INSTANCE_SEEDS, results)
        ],
    )


def test_ablation_maxmin_same_optimum(benchmark):
    def compute():
        rows = []
        for seed in INSTANCE_SEEDS:
            m = random_metric_matrix(N, seed=seed)
            with_mm = exact_mut(m, use_maxmin=True)
            without = exact_mut(m, use_maxmin=False)
            rows.append((seed, with_mm, without))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "ablation_maxmin",
        "summary",
        [
            f"seed={seed}: nodes maxmin={a.stats.nodes_expanded} "
            f"identity={b.stats.nodes_expanded}"
            for seed, a, b in rows
        ],
    )
    total_with = sum(a.stats.nodes_expanded for _, a, _ in rows)
    total_without = sum(b.stats.nodes_expanded for _, _, b in rows)
    for _, a, b in rows:
        assert a.cost == pytest.approx(b.cost)
    # Aggregate benefit (individual instances may go either way).
    assert total_with <= total_without
