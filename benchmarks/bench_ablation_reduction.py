"""Ablation: the reduction type (PaCT Section 3.1).

The paper names three reduced-matrix types -- maximum, minimum, average
-- and studies only *maximum*.  This bench quantifies the trade-off the
other two make: lower tree cost, lost feasibility (d_T >= M no longer
guaranteed).
"""

import pytest

from repro.core.pipeline import CompactSetTreeBuilder
from repro.matrix.generators import hierarchical_matrix
from repro.tree.checks import dominates_matrix

from benchmarks.common import once, record_series

MODES = ("maximum", "average", "minimum")
SPECS = {14: [7, 7], 18: [6, 6, 6]}


@pytest.mark.parametrize("mode", MODES)
def test_ablation_reduction(benchmark, mode):
    matrices = {
        n: hierarchical_matrix(spec, seed=100 + n, jitter=0.3)
        for n, spec in SPECS.items()
    }

    def run():
        builder = CompactSetTreeBuilder(reduction=mode, max_exact_size=16)
        return {n: builder.build(m) for n, m in matrices.items()}

    results = once(benchmark, run)
    record_series(
        "ablation_reduction",
        f"reduction={mode}",
        [
            f"n={n}: cost={r.cost:.2f} "
            f"feasible={dominates_matrix(r.tree, matrices[n])}"
            for n, r in results.items()
        ],
    )


def test_ablation_reduction_tradeoff(benchmark):
    def compute():
        rows = []
        for n, spec in SPECS.items():
            m = hierarchical_matrix(spec, seed=100 + n, jitter=0.3)
            per_mode = {}
            for mode in MODES:
                result = CompactSetTreeBuilder(
                    reduction=mode, max_exact_size=16
                ).build(m)
                per_mode[mode] = (result.cost, dominates_matrix(result.tree, m))
            rows.append((n, per_mode))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "ablation_reduction",
        "trade-off summary (cost, feasible)",
        [
            f"n={n}: "
            + " ".join(
                f"{mode}=({cost:.2f},{feasible})"
                for mode, (cost, feasible) in per_mode.items()
            )
            for n, per_mode in rows
        ],
    )
    for _, per_mode in rows:
        # Cost ordering: minimum <= average <= maximum.
        assert per_mode["minimum"][0] <= per_mode["average"][0] + 1e-9
        assert per_mode["average"][0] <= per_mode["maximum"][0] + 1e-9
        # Only maximum guarantees feasibility.
        assert per_mode["maximum"][1]
