"""Ablation: load-balancing policy (global-pool donation + stealing).

The HPCAsia paper credits its global/local pool design for keeping the
cluster busy.  This bench disables the two balancing mechanisms in turn
and reports makespan and efficiency on the same instance.
"""

import pytest

from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound

from benchmarks.common import once, pbb_random_matrix, record_series

POLICIES = {
    "full-balancing": dict(donate_when_global_empty=True, steal_from_loaded=True),
    "donate-only": dict(donate_when_global_empty=True, steal_from_loaded=False),
    "static-partition": dict(donate_when_global_empty=False, steal_from_loaded=False),
}
N = 16


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_ablation_pool_policy(benchmark, policy):
    matrix = pbb_random_matrix(N)
    cfg = ClusterConfig(n_workers=16, **POLICIES[policy])

    def run():
        return ParallelBranchAndBound(cfg).solve(matrix)

    result = once(benchmark, run)
    record_series(
        "ablation_pools",
        f"policy={policy} (n={N}, 16 workers)",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"efficiency={result.efficiency():.2f}",
            f"steals={sum(w.steals for w in result.workers)}",
            f"donations={sum(w.donations for w in result.workers)}",
        ],
    )
    assert result.cost > 0


def test_ablation_pools_balancing_helps(benchmark):
    def compute():
        matrix = pbb_random_matrix(N)
        out = {}
        for name, flags in POLICIES.items():
            cfg = ClusterConfig(n_workers=16, **flags)
            out[name] = ParallelBranchAndBound(cfg).solve(matrix)
        return out

    results = once(benchmark, compute)
    record_series(
        "ablation_pools",
        "summary",
        [
            f"{name}: makespan={r.makespan:.0f} efficiency={r.efficiency():.2f}"
            for name, r in results.items()
        ],
    )
    # All policies find the same optimum...
    costs = {round(r.cost, 6) for r in results.values()}
    assert len(costs) == 1
    # ...and full balancing is at least as fast as a static partition.
    assert (
        results["full-balancing"].makespan
        <= results["static-partition"].makespan
    )
