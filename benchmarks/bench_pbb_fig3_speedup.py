"""HPCAsia 2005, Figure 3: speedup, 16 processors vs single, HMDNA.

The paper reports super-linear speedups on some instances (the parallel
search finds better upper bounds earlier and prunes more).  The
reproduction computes the same ratio from the simulated makespans and
asserts the qualitative shape: consistent speedup, super-linear on at
least some instances of the whole PBB battery (see also Figure 6).
"""

from benchmarks.common import PBB_HMDNA_SIZES, once, pbb_simulation, record_series


def test_pbb_fig3_speedup_hmdna(benchmark):
    def compute():
        rows = []
        for n in PBB_HMDNA_SIZES:
            sequential = pbb_simulation("hmdna", n, 1)
            parallel = pbb_simulation("hmdna", n, 16)
            rows.append(
                (
                    n,
                    sequential.makespan / parallel.makespan,
                    sequential.total_nodes_expanded,
                    parallel.total_nodes_expanded,
                )
            )
        return rows

    rows = once(benchmark, compute)
    record_series(
        "pbb_fig3_speedup",
        "speedup (16 vs 1 processor), HMDNA",
        [
            f"n={n}: speedup={s:.2f} nodes_1p={n1} nodes_16p={n16}"
            for n, s, n1, n16 in rows
        ],
    )
    # Large instances must parallelise; tiny ones may not fill 16 workers.
    assert max(s for _, s, _, _ in rows) > 2.0
    assert all(s >= 0.9 for _, s, _, _ in rows)
