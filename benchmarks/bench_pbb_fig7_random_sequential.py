"""HPCAsia 2005, Figure 7: computing time for a single processor, random
data -- the curve that explodes with species count."""

import pytest

from benchmarks.common import PBB_RANDOM_SIZES, once, pbb_simulation, record_series


@pytest.mark.parametrize("n", PBB_RANDOM_SIZES)
def test_pbb_fig7_single_processor_random(benchmark, n):
    result = once(benchmark, pbb_simulation, "random", n, 1)
    record_series(
        "pbb_fig7_random_sequential",
        f"single processor, random n={n}",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"nodes_expanded={result.total_nodes_expanded}",
        ],
    )
    assert result.cost > 0


def test_pbb_fig7_growth_shape(benchmark):
    """Sequential effort grows steeply with the species count."""

    def compute():
        return [
            (n, pbb_simulation("random", n, 1).makespan)
            for n in PBB_RANDOM_SIZES
        ]

    rows = once(benchmark, compute)
    record_series(
        "pbb_fig7_random_sequential",
        "growth summary",
        [f"n={n}: makespan={m:.0f}" for n, m in rows],
    )
    assert rows[-1][1] > rows[0][1] * 5
