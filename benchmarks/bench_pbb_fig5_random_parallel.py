"""HPCAsia 2005, Figure 5: computing time for 16 processors, random data."""

import pytest

from benchmarks.common import PBB_RANDOM_SIZES, once, pbb_simulation, record_series


@pytest.mark.parametrize("n", PBB_RANDOM_SIZES)
def test_pbb_fig5_16_processors_random(benchmark, n):
    result = once(benchmark, pbb_simulation, "random", n, 16)
    record_series(
        "pbb_fig5_random_parallel",
        f"16 processors, random n={n}",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"nodes_expanded={result.total_nodes_expanded}",
            f"efficiency={result.efficiency():.2f}",
        ],
    )
    assert result.cost > 0
