"""HPCAsia 2005, Figure 1: computing time for 16 processors, HMDNA.

Series: simulated-cluster makespan of the parallel branch-and-bound over
a species sweep of (noisy) HMDNA matrices.  Times are simulated work
units -- the substrate substitution documented in DESIGN.md -- so the
shape (growth with species count) is the comparable quantity.
"""

import pytest

from benchmarks.common import PBB_HMDNA_SIZES, once, pbb_simulation, record_series


@pytest.mark.parametrize("n", PBB_HMDNA_SIZES)
def test_pbb_fig1_16_processors_hmdna(benchmark, n):
    result = once(benchmark, pbb_simulation, "hmdna", n, 16)
    record_series(
        "pbb_fig1_parallel_time",
        f"16 processors, HMDNA n={n}",
        [
            f"simulated_makespan={result.makespan:.0f}",
            f"nodes_expanded={result.total_nodes_expanded}",
            f"messages={result.messages}",
        ],
    )
    assert result.cost > 0
