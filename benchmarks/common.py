"""Shared workloads and reporting helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure of the papers (see
DESIGN.md's experiment index).  Workloads are cached so that parametrized
benchmark cases reuse the same matrices, and every bench appends its
series to ``benchmarks/results/<experiment>.txt`` so the numbers survive
pytest's output capturing (EXPERIMENTS.md quotes those files).
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Sequence, Tuple

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import hierarchical_matrix, random_metric_matrix
from repro.sequences.hmdna import HMDNADataset, hmdna_matrices

RESULTS_DIR = Path(__file__).parent / "results"

#: Species sweep of the PaCT random-data experiments (Figures 8-9).
#: The paper sweeps to larger n on a C/MPI cluster; pure-Python B&B is
#: ~100x slower per node, so the sweep is scaled down while preserving
#: the crossover behaviour (compact sets pay off from ~14 species on).
FIG8_SIZES: Tuple[int, ...] = (10, 14, 18, 22, 26)

_FIG8_SPECS = {
    10: [5, 5],
    14: [7, 7],
    18: [6, 6, 6],
    22: [[6, 5], [6, 5]],
    26: [[7, 6], [7, 6]],
}

#: Species sweep of the HPCAsia parallel experiments, scaled likewise.
PBB_RANDOM_SIZES: Tuple[int, ...] = (10, 12, 14, 16)
PBB_HMDNA_SIZES: Tuple[int, ...] = (12, 16, 20, 24, 28)


@lru_cache(maxsize=None)
def fig8_matrix(n: int) -> DistanceMatrix:
    """One clustered 'randomly generated' matrix per sweep point.

    The paper's random workloads clearly carried cluster structure (its
    compact-set savings reach 99.7%); ``hierarchical_matrix`` with high
    jitter reproduces that: noisy uniform-looking distances with genuine
    compact sets underneath.
    """
    return hierarchical_matrix(_FIG8_SPECS[n], seed=100 + n, jitter=0.3)


@lru_cache(maxsize=None)
def pbb_random_matrix(n: int) -> DistanceMatrix:
    """Uniform random metric matrices (HPCAsia, values 0..100)."""
    return random_metric_matrix(n, seed=42)


@lru_cache(maxsize=None)
def hmdna26_batch() -> Tuple[HMDNADataset, ...]:
    """PaCT Figure 10/11 battery: 15 data sets x 26 species."""
    return tuple(hmdna_matrices(26, 15, seed=2005))


@lru_cache(maxsize=None)
def hmdna30_batch() -> Tuple[HMDNADataset, ...]:
    """PaCT Figure 12/13 battery: 10 data sets x 30 DNAs."""
    return tuple(hmdna_matrices(30, 10, seed=2006))


@lru_cache(maxsize=None)
def hmdna_hard(n: int) -> DistanceMatrix:
    """Noisy short-fragment HMDNA variant for the parallel experiments.

    Short sequences (40 bp) evolved deep (1.2 substitutions/site)
    saturate the signal, emulating the messier edit-distance matrices of
    the original HPCAsia runs where single-processor search became
    unendurable.
    """
    from repro.sequences.hmdna import generate_hmdna_dataset

    return generate_hmdna_dataset(
        n,
        seed=900 + n,
        sequence_length=40,
        depth=1.2,
        cluster_boost=1.0,
    ).matrix


@lru_cache(maxsize=None)
def fig8_exact(n: int):
    """Plain sequential B&B on the Figure-8 matrix (cached across benches)."""
    from repro.bnb.sequential import exact_mut

    return exact_mut(fig8_matrix(n))


@lru_cache(maxsize=None)
def fig8_compact(n: int):
    """Compact-set pipeline on the Figure-8 matrix (cached across benches)."""
    from repro.core.pipeline import CompactSetTreeBuilder

    return CompactSetTreeBuilder(max_exact_size=16).build(fig8_matrix(n))


@lru_cache(maxsize=None)
def fig8_compact_traced(n: int):
    """Recorder-instrumented pipeline run on the Figure-8 matrix.

    Returns ``(CompactResult, Recorder)``; benches that break a run's
    total into per-phase shares (discover / reduce / solve / merge) read
    the recorder's spans instead of re-timing phases by hand.
    """
    from repro.core.pipeline import CompactSetTreeBuilder
    from repro.obs import Recorder

    recorder = Recorder()
    result = CompactSetTreeBuilder(
        max_exact_size=16, recorder=recorder
    ).build(fig8_matrix(n))
    return result, recorder


@lru_cache(maxsize=None)
def pbb_simulation(kind: str, n: int, workers: int, relationship_33: bool = False):
    """Simulated-cluster run, cached so figure pairs (time/speedup) share it."""
    from repro.parallel.config import ClusterConfig
    from repro.parallel.simulator import ParallelBranchAndBound

    matrix = pbb_random_matrix(n) if kind == "random" else hmdna_hard(n)
    solver = ParallelBranchAndBound(
        ClusterConfig(n_workers=workers), relationship_33=relationship_33
    )
    return solver.solve(matrix)


def record_series(experiment: str, header: str, rows: Sequence[str]) -> None:
    """Append one experiment's series to its results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    lines = [header] + [f"  {row}" for row in rows]
    with path.open("a") as fh:
        fh.write("\n".join(lines) + "\n")


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Branch-and-bound runs are seconds-long and deterministic, so one
    round is both honest and affordable.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
