"""PaCT 2005, Figure 8: computing time on random data.

Series: construction time with vs without compact sets, over a species
sweep.  The paper reports 77.19%-99.7% time saved by the compact-set
technique; the reproduction shows the same shape -- decomposition is
slightly slower than plain search at 10 species (overhead dominates) and
saves ~99.9% by 22-26 species.
"""

import pytest

from benchmarks.common import (
    FIG8_SIZES,
    fig8_compact,
    fig8_compact_traced,
    fig8_exact,
    once,
    record_series,
)


@pytest.mark.parametrize("n", FIG8_SIZES)
def test_fig08_with_compact_sets(benchmark, n):
    result = once(benchmark, fig8_compact, n)
    record_series(
        "fig08_random_time",
        f"with-compact n={n}",
        [
            f"time_s={result.elapsed_seconds:.4f}",
            f"max_subproblem={result.max_subproblem_size}",
            f"cost={result.cost:.2f}",
        ],
    )
    assert result.max_subproblem_size < n


@pytest.mark.parametrize("n", FIG8_SIZES)
def test_fig08_without_compact_sets(benchmark, n):
    result = once(benchmark, fig8_exact, n)
    compact = fig8_compact(n)
    saved = 1.0 - compact.elapsed_seconds / max(result.stats.elapsed_seconds, 1e-9)
    record_series(
        "fig08_random_time",
        f"without-compact n={n}",
        [
            f"time_s={result.stats.elapsed_seconds:.4f}",
            f"nodes={result.stats.nodes_expanded}",
            f"time_saved_by_compact={100 * saved:.2f}%",
        ],
    )
    assert result.optimal


def test_fig08_shape_time_saved_grows(benchmark):
    """The paper's headline: savings reach the 77-99.7% band at scale."""

    def summarise():
        rows = []
        for n in FIG8_SIZES:
            plain = fig8_exact(n).stats.elapsed_seconds
            compact = fig8_compact(n).elapsed_seconds
            rows.append((n, 1.0 - compact / max(plain, 1e-9)))
        return rows

    rows = once(benchmark, summarise)
    record_series(
        "fig08_random_time",
        "summary: fraction of time saved",
        [f"n={n}: saved={100 * saved:.2f}%" for n, saved in rows],
    )
    # At the top of the sweep the savings must be in the paper's band.
    assert rows[-1][1] > 0.77


def test_fig08_where_the_time_went(benchmark):
    """Table-3 style phase breakdown from the recorded span stream."""
    from repro.obs import aggregate_spans

    def breakdown():
        result, recorder = fig8_compact_traced(FIG8_SIZES[-1])
        totals = aggregate_spans(recorder.events)
        build = totals["pipeline.build"][1]
        return {
            name: seconds / max(build, 1e-9)
            for name, (_, seconds) in sorted(totals.items())
            if name in ("pipeline.discover", "pipeline.reduce",
                        "pipeline.solve", "pipeline.merge")
        }

    shares = once(benchmark, breakdown)
    record_series(
        "fig08_random_time",
        f"phase shares of build time, n={FIG8_SIZES[-1]}",
        [f"{name}: {100 * share:.2f}%" for name, share in shares.items()],
    )
    # The paper's claim: solving the reduced subproblems dominates, the
    # decomposition machinery itself is cheap.
    assert shares["pipeline.solve"] > shares["pipeline.discover"]
    assert shares["pipeline.solve"] > shares["pipeline.merge"]
