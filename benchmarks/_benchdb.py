"""Shared glue: upsert benchmark results into the campaign run database.

``bench_bnb.py`` and ``bench_service_throughput.py`` both accept
``--db <file>``; this module turns one bench report row into a case row
of a per-engine-version campaign so ``repro-mut campaign trend`` can
chart bench numbers across versions with the same machinery it uses for
suite campaigns.

Case ids are the stable workload names (``hmdna26-full``, ``rps-n9``,
...), the campaign is keyed by bench name + engine fingerprint, and
re-running a bench under the same engine *replaces* the rows (the
``upsert_case`` idempotency) instead of accumulating duplicates.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional


def bench_campaign_name(bench: str, fingerprint: Dict[str, object]) -> str:
    """Deterministic campaign name for one bench under one engine."""
    sha = fingerprint.get("git_sha") or "local"
    return f"{bench}@v{fingerprint.get('version', '?')}-{sha}"


def persist_bench_results(
    db_path: str,
    *,
    bench: str,
    rows: List[dict],
    name: Optional[str] = None,
) -> str:
    """Upsert ``rows`` into ``db_path`` as campaign ``name``.

    Each row needs ``case_id``/``method``/``n``; ``cost``,
    ``wall_seconds``, ``solve_seconds``, ``nodes_expanded``, ``options``
    and ``counters`` are optional.  Returns the campaign name used.
    """
    from repro.campaign.db import CampaignDB, CampaignExists
    from repro.version import engine_fingerprint

    fingerprint = engine_fingerprint()
    name = name or bench_campaign_name(bench, fingerprint)
    with CampaignDB(db_path) as db:
        try:
            campaign_id = db.create_campaign(
                name,
                suite=bench,
                suite_spec=json.dumps(
                    {"benchmark": bench, "cases": [r["case_id"] for r in rows]},
                    sort_keys=True,
                ),
                seed=0,
                backend="bench",
                hostname=socket.gethostname(),
                fingerprint=fingerprint,
            )
        except CampaignExists:
            campaign_id = int(db.get_campaign(name)["id"])
        for row in rows:
            db.upsert_case(
                campaign_id,
                row["case_id"],
                family="bench",
                source=bench,
                n_species=row.get("n"),
                method=row["method"],
                options=json.dumps(row.get("options", {}), sort_keys=True),
                state="done",
                cost=row.get("cost"),
                wall_seconds=row.get("wall_seconds"),
                solve_seconds=row.get("solve_seconds"),
                nodes_expanded=row.get("nodes_expanded"),
                counters=json.dumps(row.get("counters", {}), sort_keys=True),
                finished_at=time.time(),
            )
        db.mark_status(campaign_id, "completed")
    return name
