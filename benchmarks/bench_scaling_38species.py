"""Scaling headline: 38 species "within reasonable time".

The HPCAsia paper's headline result is an optimal ultrametric tree for
38 species on the 16-node cluster -- beyond anything a single 2005
processor could touch.  The pure-Python analog: the compact-set pipeline
with the simulated 16-node cluster handles a clustered 38-species matrix
in seconds, with every subproblem solved *exactly* (so the tree is the
optimal merge of optimal subtrees), while a plain whole-matrix search at
38 species would be astronomically out of reach (the paper quotes
A(30) > 10^37 topologies).
"""

from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.upgma import upgmm
from repro.matrix.generators import hierarchical_matrix
from repro.parallel.config import ClusterConfig
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree

from benchmarks.common import once, record_series


def _matrix_38():
    # 38 species in nested clusters, noisy enough to be non-trivial.
    return hierarchical_matrix(
        [[7, 6], [6, 6], [7, 6]], seed=38, jitter=0.3
    )


def test_scaling_38_species_compact_parallel(benchmark):
    matrix = _matrix_38()
    assert matrix.n == 38

    def run():
        builder = CompactSetTreeBuilder(
            solver="parallel", cluster=ClusterConfig(n_workers=16)
        )
        return builder.build(matrix)

    result = once(benchmark, run)
    heuristic_cost = upgmm(matrix).cost()
    record_series(
        "scaling_38species",
        "compact-set pipeline + simulated 16-node cluster, n=38",
        [
            f"wall_time_s={result.elapsed_seconds:.3f}",
            f"cost={result.cost:.2f}",
            f"upgmm_cost={heuristic_cost:.2f}",
            f"max_subproblem={result.max_subproblem_size}",
            f"subproblems={len(result.reports)}",
            f"all_exact={all(r.solver == 'parallel' for r in result.reports)}",
        ],
    )
    assert is_valid_ultrametric_tree(result.tree)
    assert dominates_matrix(result.tree, matrix)
    assert result.cost <= heuristic_cost + 1e-9
    # Every subproblem stayed small enough for exact search.
    assert result.max_subproblem_size <= 16
    # "Reasonable time": seconds, not the heat death of the universe.
    assert result.elapsed_seconds < 120
