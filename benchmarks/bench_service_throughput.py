"""Serving-layer throughput benchmark: cold vs warm-cache requests/sec.

Measures the full HTTP path (client -> ``http.server`` -> scheduler ->
solver/cache -> client) of an in-process :class:`ServiceServer`:

* **cold** -- every request carries a distinct matrix, so each one
  misses the cache and runs the solver;
* **warm** -- every request repeats one matrix, so all but the first
  are content-addressed cache hits.

Writes machine-readable ``BENCH_service.json`` next to
``BENCH_upgmm.json`` so later scaling PRs have a trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke  # CI
                           # smoke: subprocess serve + one POST + SIGTERM drain

The acceptance gate: warm-cache requests answer in under 10 ms median.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.matrix.generators import clustered_matrix  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.scheduler import Scheduler  # noqa: E402
from repro.service.server import ServiceServer  # noqa: E402


def _run_requests(client: ServiceClient, matrices, method: str):
    """Fire one request per matrix; returns per-request seconds."""
    durations = []
    for matrix in matrices:
        t0 = time.perf_counter()
        record = client.solve(matrix, method=method, wait_seconds=120.0)
        durations.append(time.perf_counter() - t0)
        assert record["state"] == "done", record
    return durations


def run(*, n_requests: int, species: int, method: str, workers: int) -> dict:
    with ServiceServer(Scheduler(workers=workers), port=0) as server:
        client = ServiceClient(server.url, timeout=120.0)
        cold_matrices = [
            clustered_matrix([species // 2, species - species // 2], seed=s)
            for s in range(n_requests)
        ]
        cold = _run_requests(client, cold_matrices, method)
        warm_matrix = cold_matrices[0]
        warm = _run_requests(client, [warm_matrix] * n_requests, method)
        stats = client.stats()

    def summarise(durations):
        return {
            "requests": len(durations),
            "total_seconds": sum(durations),
            "requests_per_second": len(durations) / sum(durations),
            "median_ms": statistics.median(durations) * 1e3,
            "p95_ms": sorted(durations)[int(0.95 * (len(durations) - 1))] * 1e3,
        }

    report = {
        "benchmark": "service-throughput",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "method": method,
        "species": species,
        "workers": workers,
        "cold": summarise(cold),
        "warm": summarise(warm),
        "cache": stats["cache"],
        "acceptance": {
            "warm_median_ms": statistics.median(warm) * 1e3,
            "required_max_ms": 10.0,
            "passed": statistics.median(warm) < 0.010,
        },
    }
    for phase in ("cold", "warm"):
        row = report[phase]
        print(
            f"{phase:5s}  {row['requests']:4d} req  "
            f"{row['requests_per_second']:8.1f} req/s  "
            f"median {row['median_ms']:8.3f} ms  p95 {row['p95_ms']:8.3f} ms"
        )
    return report


def smoke() -> int:
    """CI smoke: subprocess serve, one POST /solve, assert 200, drain."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        ready = proc.stdout.readline().strip()
        print(ready)
        assert "listening on" in ready, f"server never came up: {ready!r}"
        client = ServiceClient(ready.split()[-1], timeout=60.0)
        record = client.solve(clustered_matrix([3, 3], seed=1))
        assert record["state"] == "done", record
        print(f"solved: {record['result']['newick']}")
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        stderr = proc.stderr.read()
        assert "drained; bye" in stderr, stderr
        assert code == 0, f"serve exited {code}"
        print("smoke OK: solve 200 + SIGTERM drain")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer, smaller requests (CI mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="subprocess smoke test only; no benchmark")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--species", type=int, default=None)
    parser.add_argument("--method", default="compact")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    n_requests = args.requests or (10 if args.quick else 40)
    species = args.species or (8 if args.quick else 12)
    report = run(
        n_requests=n_requests,
        species=species,
        method=args.method,
        workers=args.workers,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["acceptance"]["passed"]:
        print("ACCEPTANCE FAILED: warm-cache median >= 10 ms", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
