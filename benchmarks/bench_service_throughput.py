"""Serving-layer throughput benchmark: cold vs warm-cache requests/sec.

Measures the full HTTP path (client -> ``http.server`` -> scheduler ->
solver/cache -> client) of an in-process :class:`ServiceServer`:

* **cold** -- every request carries a distinct matrix, so each one
  misses the cache and runs the solver;
* **warm** -- every request repeats one matrix, so all but the first
  are content-addressed cache hits.

Writes machine-readable ``BENCH_service.json`` next to
``BENCH_upgmm.json`` so later scaling PRs have a trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke  # CI
                           # smoke: subprocess serve + one POST + SIGTERM drain
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --metrics-smoke
                           # subprocess serve + one POST + GET /metrics +
                           # live /jobs/<id>/progress snapshots during a
                           # capped exact solve
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --db run.sqlite
                           # also upsert summaries into a campaign DB
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --scaling
                           # thread vs process backend cold-solve scaling

The acceptance gate: warm-cache requests answer in under 10 ms median.
The report also measures the always-on metrics registry against a no-op
registry (``metrics_overhead``); the target is under 3 % on the
warm-cache scheduler path.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.matrix.generators import clustered_matrix  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.scheduler import Scheduler  # noqa: E402
from repro.service.server import ServiceServer  # noqa: E402


def _run_requests(client: ServiceClient, matrices, method: str):
    """Fire one request per matrix; returns per-request seconds."""
    durations = []
    for matrix in matrices:
        t0 = time.perf_counter()
        record = client.solve(matrix, method=method, wait_seconds=120.0)
        durations.append(time.perf_counter() - t0)
        assert record["state"] == "done", record
    return durations


def run(*, n_requests: int, species: int, method: str, workers: int) -> dict:
    with ServiceServer(Scheduler(workers=workers), port=0) as server:
        client = ServiceClient(server.url, timeout=120.0)
        cold_matrices = [
            clustered_matrix([species // 2, species - species // 2], seed=s)
            for s in range(n_requests)
        ]
        cold = _run_requests(client, cold_matrices, method)
        warm_matrix = cold_matrices[0]
        warm = _run_requests(client, [warm_matrix] * n_requests, method)
        stats = client.stats()

    def summarise(durations):
        return {
            "requests": len(durations),
            "total_seconds": sum(durations),
            "requests_per_second": len(durations) / sum(durations),
            "median_ms": statistics.median(durations) * 1e3,
            "p95_ms": sorted(durations)[int(0.95 * (len(durations) - 1))] * 1e3,
        }

    report = {
        "benchmark": "service-throughput",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "method": method,
        "species": species,
        "workers": workers,
        "cold": summarise(cold),
        "warm": summarise(warm),
        "cache": stats["cache"],
        "acceptance": {
            "warm_median_ms": statistics.median(warm) * 1e3,
            "required_max_ms": 10.0,
            "passed": statistics.median(warm) < 0.010,
        },
    }
    for phase in ("cold", "warm"):
        row = report[phase]
        print(
            f"{phase:5s}  {row['requests']:4d} req  "
            f"{row['requests_per_second']:8.1f} req/s  "
            f"median {row['median_ms']:8.3f} ms  p95 {row['p95_ms']:8.3f} ms"
        )
    return report


def measure_metrics_overhead(
    *, n_requests: int, species: int, method: str
) -> dict:
    """Median warm-cache request latency: no-op vs live registry.

    Runs the full HTTP path twice -- once with the scheduler wired to
    :data:`NULL_METRICS`, once with a live registry -- over identical
    warm-cache requests, so the only difference between runs is whether
    counters/histograms/gauges record.
    """
    from repro.obs.metrics import NULL_METRICS, MetricsRegistry

    # Warm cache hits are ~1 ms, so oversample: medians over a handful of
    # HTTP round-trips jitter far more than the effect being measured.
    n_requests = max(n_requests * 5, 100)
    matrix = clustered_matrix([species // 2, species - species // 2], seed=0)

    def timed(metrics):
        with ServiceServer(
            Scheduler(workers=1, metrics=metrics), port=0
        ) as server:
            client = ServiceClient(server.url, timeout=120.0)
            client.solve(matrix, method=method, wait_seconds=120.0)  # prime
            durations = _run_requests(client, [matrix] * n_requests, method)
        return statistics.median(durations)

    # One discarded run absorbs first-server warm-up (imports, thread
    # spin-up); then alternate which configuration goes first on each
    # repeat so drift (turbo, background load) hits both sides equally.
    timed(NULL_METRICS)
    off_medians, on_medians = [], []
    for repeat in range(4):
        pair = [(NULL_METRICS, off_medians), (MetricsRegistry(), on_medians)]
        if repeat % 2:
            pair.reverse()
        for metrics, sink in pair:
            sink.append(timed(metrics))
    off = min(off_medians)
    on = min(on_medians)
    overhead = (on - off) / off * 100.0 if off > 0 else 0.0
    report = {
        "requests_per_run": n_requests,
        "off_median_ms": off * 1e3,
        "on_median_ms": on * 1e3,
        "overhead_percent": overhead,
        "target_max_percent": 3.0,
        "within_target": overhead < 3.0,
    }
    print(
        f"metrics overhead: off {report['off_median_ms']:.3f} ms  "
        f"on {report['on_median_ms']:.3f} ms  "
        f"overhead {overhead:+.2f}% (target < 3%)"
    )
    if not report["within_target"]:
        print(
            "WARNING: metrics overhead above 3% target (advisory only; "
            "micro-timings are noisy on shared runners)",
            file=sys.stderr,
        )
    return report


def measure_process_scaling(
    *,
    species: int,
    jobs_per_worker: int = 2,
    worker_counts=(1, 2, 4),
    method: str = "bnb",
) -> dict:
    """Cold exact-solve throughput: thread vs process backend.

    Submits ``jobs_per_worker * workers`` distinct matrices directly to
    a fresh scheduler (no HTTP, no cache reuse between runs) and times
    first-submit to last-result.  The workload is pure branch-and-bound
    on random *metric* (not ultrametric-like) matrices -- hundreds of
    milliseconds of GIL-holding search per job, so solve time dominates
    the per-job process transport and the comparison measures execution,
    not dispatch.  The thread backend cannot exceed one core on this
    workload; the process backend's speedup is bounded by ``cpu_cores``,
    which the report records -- a 1-core runner *cannot* show scaling,
    and says so instead of faking it.  Also asserts the process backend
    forwarded the child processes' spans and metrics into the parent's
    recorder/registry.
    """
    from repro.matrix.generators import random_metric_matrix
    from repro.obs import MetricsRegistry, Recorder

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1

    def one_run(backend: str, workers: int) -> dict:
        n = jobs_per_worker * workers
        matrices = [
            random_metric_matrix(species, seed=7000 + i) for i in range(n)
        ]
        recorder = Recorder()
        metrics = MetricsRegistry()
        scheduler = Scheduler(
            workers=workers,
            backend=backend,
            recorder=recorder,
            metrics=metrics,
            queue_size=max(64, n),
        )
        try:
            t0 = time.perf_counter()
            handles = [scheduler.submit(m, method) for m in matrices]
            for handle in handles:
                handle.result(600.0)
            elapsed = time.perf_counter() - t0
        finally:
            scheduler.shutdown()
        solver_spans = sum(
            1 for e in recorder.events
            if getattr(e, "name", "").startswith(("bnb.", "pipeline."))
        )
        snapshot = metrics.snapshot()
        solve_metrics = any("solve.seconds" in k for k in snapshot)
        if backend == "process":
            assert solver_spans > 0, (
                "process backend forwarded no child spans to the parent"
            )
            assert solve_metrics, (
                "process backend forwarded no child metrics to the parent"
            )
        return {
            "requests": n,
            "seconds": elapsed,
            "requests_per_second": n / elapsed,
            "solver_spans_in_parent_trace": solver_spans,
            "solve_metrics_in_parent_registry": solve_metrics,
        }

    rows = []
    for workers in worker_counts:
        thread = one_run("thread", workers)
        process = one_run("process", workers)
        speedup = (
            process["requests_per_second"] / thread["requests_per_second"]
        )
        rows.append({
            "workers": workers,
            "thread": thread,
            "process": process,
            "process_vs_thread_speedup": speedup,
        })
        print(
            f"workers {workers}:  thread "
            f"{thread['requests_per_second']:7.2f} req/s   process "
            f"{process['requests_per_second']:7.2f} req/s   speedup "
            f"{speedup:5.2f}x"
        )
    top = rows[-1]
    evaluable = cores >= top["workers"]
    report = {
        "method": method,
        "species": species,
        "jobs_per_worker": jobs_per_worker,
        "cpu_cores": cores,
        "rows": rows,
        "acceptance": {
            "required_speedup": 3.0,
            "at_workers": top["workers"],
            "measured_speedup": top["process_vs_thread_speedup"],
            "evaluable": evaluable,
            "passed": (
                top["process_vs_thread_speedup"] >= 3.0 if evaluable
                else None
            ),
            "note": (
                "speedup is bounded above by available cores; this host "
                f"exposes {cores} core(s)"
            ),
        },
    }
    if not evaluable:
        print(
            f"NOTE: host exposes {cores} core(s) < {top['workers']} "
            "workers; the 3x scaling target is not evaluable here "
            "(recorded honestly, not faked)",
            file=sys.stderr,
        )
    return report


def metrics_smoke() -> int:
    """CI smoke: serve subprocess, one solve, /metrics content, and the
    live-progress path: a node-capped n=26 exact solve through the
    process backend must publish >= 2 distinct ``/jobs/<id>/progress``
    snapshots while running, and ``bnb_gap`` must reach ``/metrics``."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--backend", "process"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        ready = proc.stdout.readline().strip()
        print(ready)
        assert "listening on" in ready, f"server never came up: {ready!r}"
        client = ServiceClient(ready.split()[-1], timeout=60.0)
        record = client.solve(clustered_matrix([3, 3], seed=1))
        assert record["state"] == "done", record
        text = client.metrics()
        for needle in ("service_job_seconds_bucket", "cache_miss_total"):
            assert needle in text, f"/metrics is missing {needle!r}:\n{text}"
        stats = client.stats()
        assert "metrics" in stats, sorted(stats)

        # Live progress: capped exact solve, polled while it runs.
        slow = client.solve(
            clustered_matrix([13, 13], seed=5),
            method="bnb",
            options={"node_limit": 30000},
            wait=False,
        )
        job_id = slow["id"]
        snapshots = []
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            progress = client.job_progress(job_id)
            snap = progress.get("progress")
            if snap and (
                not snapshots or snap["time"] != snapshots[-1]["time"]
            ):
                snapshots.append(snap)
            if progress["state"] not in ("pending", "running"):
                break
            time.sleep(0.05)
        assert progress["state"] == "done", progress
        assert len(snapshots) >= 2, (
            f"expected >= 2 distinct progress snapshots, got "
            f"{len(snapshots)}: {snapshots}"
        )
        text = client.metrics()
        assert "bnb_gap" in text, f"/metrics is missing bnb_gap:\n{text}"
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0, f"serve exited {code}: {proc.stderr.read()}"
        print(f"metrics smoke OK: /metrics exposes job histogram + cache "
              f"counters; live progress published {len(snapshots)} "
              f"snapshot(s) + bnb_gap gauge")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def smoke(backend: str = None) -> int:
    """CI smoke: subprocess serve, one POST /solve, assert 200, drain."""
    cmd = [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
    if backend:
        cmd += ["--backend", backend]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        ready = proc.stdout.readline().strip()
        print(ready)
        assert "listening on" in ready, f"server never came up: {ready!r}"
        client = ServiceClient(ready.split()[-1], timeout=60.0)
        record = client.solve(clustered_matrix([3, 3], seed=1))
        assert record["state"] == "done", record
        print(f"solved: {record['result']['newick']}")
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        stderr = proc.stderr.read()
        assert "drained; bye" in stderr, stderr
        if backend:
            assert f"backend={backend}" in stderr, stderr
        assert code == 0, f"serve exited {code}"
        print(f"smoke OK: solve 200 + SIGTERM drain "
              f"(backend={backend or 'auto'})")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer, smaller requests (CI mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="subprocess smoke test only; no benchmark")
    parser.add_argument("--metrics-smoke", action="store_true",
                        help="subprocess /metrics smoke test only; no benchmark")
    parser.add_argument("--scaling", action="store_true",
                        help="measure thread vs process backend scaling and "
                             "merge a process_scaling section into --out")
    parser.add_argument("--backend", default=None,
                        choices=("auto", "thread", "process"),
                        help="backend the --smoke subprocess serves with")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--species", type=int, default=None)
    parser.add_argument("--method", default="compact")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    parser.add_argument("--db", default=None,
                        help="also upsert the cold/warm summaries into this "
                             "campaign run database (repro-mut campaign "
                             "trend charts them across versions)")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.backend)
    if args.metrics_smoke:
        return metrics_smoke()
    if args.scaling:
        scaling = measure_process_scaling(
            species=args.species or 18,
            method="bnb" if args.method == "compact" else args.method,
        )
        report = (
            json.loads(args.out.read_text()) if args.out.exists() else
            {"benchmark": "service-throughput"}
        )
        report["process_scaling"] = scaling
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote process_scaling into {args.out}")
        return 0
    n_requests = args.requests or (10 if args.quick else 40)
    species = args.species or (8 if args.quick else 12)
    report = run(
        n_requests=n_requests,
        species=species,
        method=args.method,
        workers=args.workers,
    )
    report["metrics_overhead"] = measure_metrics_overhead(
        n_requests=n_requests,
        species=species,
        method=args.method,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.db:
        from _benchdb import persist_bench_results

        rows = []
        for phase in ("cold", "warm"):
            row = report[phase]
            rows.append({
                "case_id": f"{phase}-n{species}",
                "method": args.method,
                "n": species,
                "wall_seconds": row["total_seconds"],
                "solve_seconds": row["median_ms"] / 1e3,
                "options": {"requests": row["requests"], "phase": phase},
                "counters": {
                    "bench.requests_per_second": row["requests_per_second"],
                    "bench.p95_ms": row["p95_ms"],
                    "bench.metrics_overhead_percent": (
                        report["metrics_overhead"]["overhead_percent"]
                    ),
                },
            })
        name = persist_bench_results(
            args.db, bench="bench-service", rows=rows
        )
        print(f"upserted {len(rows)} case(s) into {args.db} "
              f"as campaign {name!r}")
    if not report["acceptance"]["passed"]:
        print("ACCEPTANCE FAILED: warm-cache median >= 10 ms", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
