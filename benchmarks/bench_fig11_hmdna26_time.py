"""PaCT 2005, Figure 11: computing time of 26-species HMDNA sets.

The paper's own observation holds in the reproduction: "using compact
sets can definitely save time but unexpectedly the experiments without
compact sets also take little time" -- clock-like HMDNA matrices are
nearly ultrametric, so the UPGMM upper bound is almost exact and plain
branch-and-bound prunes immediately.
"""

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder

from benchmarks.common import hmdna26_batch, once, record_series


def test_fig11_with_compact_sets(benchmark):
    builder = CompactSetTreeBuilder(max_exact_size=16)

    def run():
        return [builder.build(d.matrix) for d in hmdna26_batch()]

    results = once(benchmark, run)
    record_series(
        "fig11_hmdna26_time",
        "with compact sets (per data set)",
        [
            f"{d.name}: time_s={r.elapsed_seconds:.4f} maxsub={r.max_subproblem_size}"
            for d, r in zip(hmdna26_batch(), results)
        ],
    )
    assert all(r.max_subproblem_size < 26 for r in results)


def test_fig11_without_compact_sets(benchmark):
    def run():
        return [
            exact_mut(d.matrix, node_limit=500_000) for d in hmdna26_batch()
        ]

    results = once(benchmark, run)
    record_series(
        "fig11_hmdna26_time",
        "without compact sets (per data set)",
        [
            f"{d.name}: time_s={r.stats.elapsed_seconds:.4f} nodes={r.stats.nodes_expanded}"
            for d, r in zip(hmdna26_batch(), results)
        ],
    )
    # The paper's surprise: plain search stays fast on HMDNA too.
    assert all(r.optimal for r in results)
