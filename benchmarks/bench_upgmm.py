"""UPGMM hot-path benchmark: vectorised vs reference agglomerative path.

Times :func:`repro.heuristics.upgma.agglomerative_tree` (the production,
vectorised implementation) against
:func:`~repro.heuristics.upgma.agglomerative_tree_reference` (the original
pure-Python loop kept as the differential oracle) on random metric
matrices, verifies both produce trees of identical cost, and writes a
machine-readable ``BENCH_upgmm.json`` so later PRs have a perf
trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/bench_upgmm.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_upgmm.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_upgmm.py --out path.json

The acceptance gate for the hot-path overhaul is a >= 10x speedup at
n=200; ``acceptance.n200_speedup`` in the JSON records the measured
value (absent in ``--quick`` mode, which stops at smaller n).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.heuristics.upgma import (
    _maximum_linkage,
    agglomerative_tree,
    agglomerative_tree_reference,
)
from repro.matrix.generators import random_metric_matrix

FULL_SIZES = (50, 100, 200)
QUICK_SIZES = (30, 60)
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_upgmm.json"


def _best_of(fn, repeats: int):
    """Minimum wall time of ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def run(sizes, *, fast_repeats: int = 5, seed: int = 0) -> dict:
    results = []
    for n in sizes:
        matrix = random_metric_matrix(n, seed=seed, integer=False)
        fast_s, fast_tree = _best_of(
            lambda: agglomerative_tree(matrix, _maximum_linkage), fast_repeats
        )
        ref_s, ref_tree = _best_of(
            lambda: agglomerative_tree_reference(matrix, _maximum_linkage), 1
        )
        fast_cost, ref_cost = fast_tree.cost(), ref_tree.cost()
        if abs(fast_cost - ref_cost) > 1e-6:
            raise AssertionError(
                f"differential mismatch at n={n}: "
                f"fast={fast_cost!r} reference={ref_cost!r}"
            )
        row = {
            "n": n,
            "linkage": "upgmm",
            "fast_seconds": fast_s,
            "reference_seconds": ref_s,
            "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
            "cost": fast_cost,
        }
        results.append(row)
        print(
            f"n={n:4d}  fast={fast_s * 1e3:9.2f} ms  "
            f"reference={ref_s * 1e3:9.2f} ms  speedup={row['speedup']:7.1f}x"
        )
    report = {
        "benchmark": "upgmm-agglomerative-hot-path",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": seed,
        "results": results,
    }
    by_n = {r["n"]: r for r in results}
    if 200 in by_n:
        report["acceptance"] = {
            "n200_speedup": by_n[200]["speedup"],
            "required_min_speedup": 10.0,
            "passed": by_n[200]["speedup"] >= 10.0,
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes only (CI smoke mode)",
    )
    parser.add_argument(
        "--sizes",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None,
        help="comma-separated species counts (overrides --quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    sizes = args.sizes or (QUICK_SIZES if args.quick else FULL_SIZES)
    report = run(sizes)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    acceptance = report.get("acceptance")
    if acceptance is not None and not acceptance["passed"]:
        print("ACCEPTANCE FAILED: n=200 speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
