"""Ablation: heuristic quality ladder.

Positions every heuristic in the repository against the exact optimum on
the same instances: UPGMA (infeasible, tight), UPGMM (feasible upper
bound, BBU's seed), greedy sequential addition (feasible, usually
tighter than UPGMM), and the compact-set pipeline (feasible,
near-optimal).
"""

import pytest

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.greedy import greedy_insertion
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.generators import hierarchical_matrix

from benchmarks.common import once, record_series

SEEDS = (3, 7, 11)


def _instance(seed):
    return hierarchical_matrix([[4, 3], [4, 3]], seed=seed, jitter=0.3)


METHODS = {
    "upgma": lambda m: upgma(m).cost(),
    "upgmm": lambda m: upgmm(m).cost(),
    "greedy": lambda m: greedy_insertion(m).cost(),
    "compact": lambda m: CompactSetTreeBuilder(max_exact_size=16).build(m).cost,
}


@pytest.mark.parametrize("method", sorted(METHODS))
def test_ablation_heuristic(benchmark, method):
    matrices = [_instance(seed) for seed in SEEDS]

    def run():
        return [METHODS[method](m) for m in matrices]

    costs = once(benchmark, run)
    record_series(
        "ablation_heuristics",
        f"method={method}",
        [f"seed={seed}: cost={c:.2f}" for seed, c in zip(SEEDS, costs)],
    )


def test_ablation_heuristic_ladder(benchmark):
    def compute():
        rows = []
        for seed in SEEDS:
            m = _instance(seed)
            optimal = exact_mut(m).cost
            gaps = {
                name: fn(m) / optimal - 1.0 for name, fn in METHODS.items()
            }
            rows.append((seed, optimal, gaps))
        return rows

    rows = once(benchmark, compute)
    record_series(
        "ablation_heuristics",
        "gap vs exact optimum",
        [
            f"seed={seed} (opt={opt:.2f}): "
            + " ".join(f"{k}={100 * v:+.2f}%" for k, v in sorted(gaps.items()))
            for seed, opt, gaps in rows
        ],
    )
    for _, _, gaps in rows:
        # Feasible methods can never dip below the optimum.
        for name in ("upgmm", "greedy", "compact"):
            assert gaps[name] >= -1e-9
        # The compact pipeline is the tightest feasible method here.
        assert gaps["compact"] <= gaps["upgmm"] + 1e-9
