"""Scenario: dedicated cluster vs national grid (the NSC report's study).

The project's second year moved the parallel tree builder from the lab's
16-node cluster onto UniGrid -- donated, heterogeneous machines behind
Internet latency.  This example reproduces the study: same instance,
four environments, with scaling analytics and a load-balance Gantt view
of the heterogeneous run.

Run with::

    python examples/grid_computing.py
"""

from repro import ClusterConfig, ParallelBranchAndBound, grid_config, random_metric_matrix
from repro.parallel.analysis import karp_flatt
from repro.parallel.trace import ascii_gantt, worker_utilization


def main() -> None:
    matrix = random_metric_matrix(14, seed=42)
    print(f"instance: {matrix.n} species, uniform random metric\n")

    environments = {
        "single machine": ClusterConfig(n_workers=1),
        "cluster, 16 nodes": ClusterConfig(n_workers=16),
        "grid, 16 nodes": grid_config(16),
        "grid, 24 nodes": grid_config(24),
    }

    results = {}
    for name, cfg in environments.items():
        results[name] = ParallelBranchAndBound(cfg).solve(matrix)

    base = results["single machine"].makespan
    print(f"{'environment':<20} {'makespan':>12} {'speedup':>8} {'serial frac':>12}")
    for name, result in results.items():
        speedup = base / result.makespan
        p = environments[name].n_workers
        serial = f"{karp_flatt(speedup, p):+.3f}" if p > 1 else "-"
        print(f"{name:<20} {result.makespan:>12,.0f} {speedup:>8.2f} {serial:>12}")

    print(
        "\nthe NSC report's findings, reproduced:\n"
        "  * both parallel environments crush the single machine;\n"
        "  * at equal node counts the grid trails the cluster (Internet\n"
        "    latency + donated CPUs);\n"
        "  * 24 grid nodes overtake the 16-node cluster."
    )

    # Load balance of the heterogeneous grid, as a Gantt chart.
    traced_cfg = grid_config(8, record_trace=True)
    traced = ParallelBranchAndBound(traced_cfg).solve(matrix)
    print(f"\ngrid run at 8 nodes (speeds "
          f"{[round(s, 2) for s in traced_cfg.worker_speeds]}):")
    print(ascii_gantt(traced.trace, 8, traced.makespan, width=64))
    util = worker_utilization(traced.trace, 8, traced.makespan)
    mean_util = sum(util.values()) / len(util)
    print(f"mean utilization: {mean_util:.0%} "
          f"(stealing keeps slow donated nodes from stalling the run)")


if __name__ == "__main__":
    main()
