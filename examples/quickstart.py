"""Quickstart: build a minimum ultrametric tree three ways.

Run with::

    python examples/quickstart.py
"""

from repro import DistanceMatrix, construct_tree, to_newick

# A small distance matrix over six species (the paper's Figure 3 example,
# reconstructed).  Species 1, 2, 3 form a tight cluster; 4 and 6 another.
MATRIX = DistanceMatrix(
    [
        [0.0, 3.0, 1.0, 6.2, 4.5, 6.4],
        [3.0, 0.0, 3.5, 6.1, 4.6, 6.3],
        [1.0, 3.5, 0.0, 5.8, 4.0, 5.9],
        [6.2, 6.1, 5.8, 0.0, 5.5, 2.0],
        [4.5, 4.6, 4.0, 5.5, 0.0, 5.0],
        [6.4, 6.3, 5.9, 2.0, 5.0, 0.0],
    ],
    labels=["sp1", "sp2", "sp3", "sp4", "sp5", "sp6"],
)


def main() -> None:
    print(f"{MATRIX.n} species; metric: {MATRIX.is_metric()}\n")

    # 1. The paper's pipeline: compact-set decomposition + exact B&B.
    compact = construct_tree(MATRIX, method="compact")
    print("compact-set pipeline")
    print(f"  cost   : {compact.cost:.3f}")
    print(f"  newick : {to_newick(compact.tree, precision=2)}")
    print(f"  largest subproblem: {compact.details.max_subproblem_size} "
          f"(out of {MATRIX.n} species)\n")

    # 2. Plain exact branch-and-bound (Algorithm BBU) for comparison.
    exact = construct_tree(MATRIX, method="bnb")
    print("exact branch-and-bound")
    print(f"  cost   : {exact.cost:.3f}")
    print(f"  nodes expanded: {exact.details.stats.nodes_expanded}\n")

    # 3. The UPGMM heuristic that seeds the search.
    heuristic = construct_tree(MATRIX, method="upgmm")
    print("UPGMM heuristic")
    print(f"  cost   : {heuristic.cost:.3f}\n")

    gap = compact.cost / exact.cost - 1
    print(f"compact-set tree is within {100 * gap:.2f}% of the optimum")


if __name__ == "__main__":
    main()
