"""Scenario: walk through the compact-set machinery step by step.

Reproduces the paper's Section 3.1 narrative on a clustered matrix: find
the MST, scan it for compact sets, arrange them as a hierarchy, build
the reduced (maximum) matrices, solve each exactly, and merge.

Run with::

    python examples/compact_set_decomposition.py
"""

from repro import (
    CompactSetHierarchy,
    find_compact_sets,
    hierarchical_matrix,
    kruskal_mst,
    to_newick,
)
from repro.bnb import exact_mut
from repro.core import CompactSetTreeBuilder, reduce_matrix
from repro.tree.checks import dominates_matrix


def main() -> None:
    # Nested clusters: ((3 + 2) species, (4) species).
    matrix = hierarchical_matrix([[3, 2], [4]], seed=11)
    labels = matrix.labels
    print(f"{matrix.n} species, nested cluster structure\n")

    # Step 1: minimum spanning tree (Kruskal).
    print("MST edges in acceptance order:")
    for i, j, w in kruskal_mst(matrix):
        print(f"  ({labels[i]}, {labels[j]})  weight {w:.2f}")

    # Step 2: scan for compact sets.
    sets = find_compact_sets(matrix)
    print(f"\ncompact sets ({len(sets)}):")
    for members in sets:
        print("  {" + ", ".join(sorted(labels[i] for i in members)) + "}")

    # Step 3: the laminar hierarchy.
    hierarchy = CompactSetHierarchy.from_matrix(matrix)
    print(f"\nhierarchy: depth {hierarchy.depth()}, "
          f"largest reduced matrix {hierarchy.max_subproblem_size()}")

    # Step 4: one reduced (maximum) matrix, spelled out.
    root_children = sorted(hierarchy.root.children, key=lambda c: min(c.members))
    groups = [sorted(child.members) for child in root_children]
    names = ["G" + str(k) for k in range(len(groups))]
    reduced = reduce_matrix(matrix, groups, names, mode="maximum")
    print(f"\nroot reduced matrix over {len(groups)} groups:")
    for a in names:
        row = " ".join(f"{reduced[a, b]:7.2f}" for b in names)
        print(f"  {a}: {row}")

    # Step 5: the full pipeline vs the exact optimum.
    pipeline = CompactSetTreeBuilder().build(matrix)
    optimum = exact_mut(matrix)
    print(f"\npipeline cost : {pipeline.cost:.3f} "
          f"({len(pipeline.reports)} subproblems)")
    print(f"exact optimum : {optimum.cost:.3f} "
          f"({optimum.stats.nodes_expanded} B&B nodes)")
    print(f"feasible (d_T >= M): {dominates_matrix(pipeline.tree, matrix)}")
    print(f"\ntree: {to_newick(pipeline.tree, precision=1)}")


if __name__ == "__main__":
    main()
