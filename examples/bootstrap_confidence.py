"""Scenario: how much should a biologist trust the tree?

Builds a tree with the compact-set pipeline, then answers the question
the project report's "tool system" must face in practice: which parts of
the tree are solid?  Three instruments:

* bootstrap support per clade (Felsenstein resampling);
* the consensus of all cost-optimal trees (the search's "results set");
* the validation report (feasibility, 3-3 contradictions, cophenetic
  correlation).

Run with::

    python examples/bootstrap_confidence.py
"""

from repro import construct_tree, validate_tree
from repro.bnb import exact_mut
from repro.sequences import generate_hmdna_dataset
from repro.sequences.bootstrap import bootstrap_support
from repro.tree import majority_consensus, render_ascii
from repro.tree.compare import clades


def main() -> None:
    dataset = generate_hmdna_dataset(10, seed=21, sequence_length=600)
    matrix = dataset.matrix
    print(f"dataset: {matrix.n} synthetic HMDNA sequences\n")

    result = construct_tree(matrix, method="compact", max_exact_size=12)
    print(render_ascii(result.tree, width=44))

    # 1. Bootstrap support.
    support = bootstrap_support(
        result.tree, dataset.sequences, n_replicates=30, seed=21
    )
    print("\nbootstrap support (30 replicates):")
    for clade, fraction in sorted(
        support.items(), key=lambda item: -item[1]
    ):
        members = ", ".join(sorted(clade))
        bar = "#" * int(20 * fraction)
        print(f"  {fraction:5.0%} |{bar:<20}| {{{members}}}")

    # 2. Consensus over every cost-optimal tree.
    optimal = exact_mut(matrix, collect_all=True)
    print(f"\n{len(optimal.all_trees)} cost-optimal tree(s) "
          f"at cost {optimal.cost:.2f}")
    if len(optimal.all_trees) > 1:
        consensus = majority_consensus(optimal.all_trees)
        stable = clades(consensus)
        print(f"majority consensus keeps {len(stable)} clades -- these are "
              "the relations every optimal tree agrees on")

    # 3. The validation report.
    report = validate_tree(result.tree, matrix, compare_optimal=True)
    print("\nvalidation report:")
    print(report.summary())


if __name__ == "__main__":
    main()
