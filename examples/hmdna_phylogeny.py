"""Scenario: a Human-Mitochondrial-DNA-style phylogeny, end to end.

Mirrors the paper's biological workflow: sequences -> distance matrix ->
compact-set decomposition -> minimum ultrametric tree, then a quality
report against the (normally unknowable) true tree.

Run with::

    python examples/hmdna_phylogeny.py
"""

from repro import construct_tree, count_33_contradictions, find_compact_sets, to_newick
from repro.sequences import generate_hmdna_dataset


def main() -> None:
    # 26 species, as in the paper's first HMDNA battery.  The generator
    # evolves sequences along a hidden clock-like species tree.
    dataset = generate_hmdna_dataset(26, seed=7)
    matrix = dataset.matrix
    print(f"dataset {dataset.name}: {matrix.n} sequences of "
          f"{len(next(iter(dataset.sequences.values())))} bp")
    print(f"matrix is metric: {matrix.is_metric()}")

    # Haplogroup structure shows up as compact sets.
    compact_sets = find_compact_sets(matrix)
    print(f"\n{len(compact_sets)} non-trivial compact sets (haplogroups):")
    for members in compact_sets[:8]:
        names = sorted(matrix.labels[i] for i in members)
        print("  {" + ", ".join(names) + "}")
    if len(compact_sets) > 8:
        print(f"  ... and {len(compact_sets) - 8} more")

    # Build the tree with the paper's pipeline.
    result = construct_tree(matrix, method="compact", max_exact_size=16)
    print(f"\ncompact-set ultrametric tree: cost {result.cost:.2f}")
    print(f"largest exact subproblem: {result.details.max_subproblem_size} species")

    # Compare against the exact optimum and the heuristic.
    exact = construct_tree(matrix, method="bnb")
    upgmm = construct_tree(matrix, method="upgmm")
    print(f"exact optimum cost: {exact.cost:.2f} "
          f"(compact is {100 * (result.cost / exact.cost - 1):+.2f}%)")
    print(f"UPGMM cost        : {upgmm.cost:.2f} "
          f"({100 * (upgmm.cost / exact.cost - 1):+.2f}%)")

    # How faithfully does the tree reflect the matrix? (Fan's measure.)
    contradictions = count_33_contradictions(result.tree, matrix)
    print(f"\n3-3 contradictions in the compact tree: {contradictions}")

    # Against the hidden truth: the true tree's leaves cluster the same way?
    true_newick = to_newick(dataset.true_tree, precision=2)
    print(f"\ntrue tree   : {true_newick[:100]}...")
    print(f"inferred    : {to_newick(result.tree, precision=2)[:100]}...")


if __name__ == "__main__":
    main()
