"""Scenario: the 16-node PC cluster, simulated.

Runs the parallel branch-and-bound on the simulated master/slave cluster
across several cluster sizes, printing the speedup curve, per-worker
load balance and message traffic -- the quantities behind the HPCAsia
paper's Figures 1-8.  Finishes with a real multi-process run on local
cores to confirm the decomposition gives the same optimum.

Run with::

    python examples/parallel_cluster_sim.py
"""

from repro import (
    ClusterConfig,
    ParallelBranchAndBound,
    multiprocess_mut,
    random_metric_matrix,
)


def main() -> None:
    matrix = random_metric_matrix(14, seed=42)
    print(f"instance: {matrix.n} species, uniform random metric\n")

    baseline = ParallelBranchAndBound(ClusterConfig(n_workers=1)).solve(matrix)
    print(f"single processor: makespan {baseline.makespan:,.0f} work units, "
          f"{baseline.total_nodes_expanded} nodes\n")

    print(f"{'p':>3} {'makespan':>12} {'speedup':>8} {'efficiency':>10} "
          f"{'nodes':>7} {'messages':>9}")
    for p in (2, 4, 8, 16):
        result = ParallelBranchAndBound(ClusterConfig(n_workers=p)).solve(matrix)
        speedup = baseline.makespan / result.makespan
        marker = "  <- super-linear" if speedup > p else ""
        print(f"{p:>3} {result.makespan:>12,.0f} {speedup:>8.2f} "
              f"{result.efficiency():>10.2f} {result.total_nodes_expanded:>7} "
              f"{result.messages:>9}{marker}")

    # Per-worker balance at p = 8.
    result = ParallelBranchAndBound(ClusterConfig(n_workers=8)).solve(matrix)
    print("\nload balance at p=8 (global pool + donation + stealing):")
    for w in result.workers:
        bar = "#" * int(40 * w.busy_time / max(result.makespan, 1))
        print(f"  worker {w.worker_id}: {bar} "
              f"({w.nodes_expanded} nodes, {w.steals} steals)")

    # Cross-check on real cores.
    mp = multiprocess_mut(matrix, n_workers=4)
    match = "matches" if abs(mp.cost - baseline.cost) < 1e-9 else "DIFFERS FROM"
    print(f"\nreal 4-process run: cost {mp.cost:.2f} ({match} the simulated optimum)")


if __name__ == "__main__":
    main()
