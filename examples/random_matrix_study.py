"""Scenario: when do compact sets pay off?

Sweeps matrix structure from fully uniform (no compact sets) to strongly
clustered (rich compact sets) and reports, for each regime, the
decomposition quality and the time/cost trade-off against plain exact
search -- the practical guidance a user of the technique needs.

Run with::

    python examples/random_matrix_study.py
"""

import time

from repro import (
    CompactSetHierarchy,
    find_compact_sets,
    hierarchical_matrix,
    random_metric_matrix,
)
from repro.bnb import exact_mut
from repro.core import CompactSetTreeBuilder


def study(name, matrix):
    sets = find_compact_sets(matrix)
    hierarchy = CompactSetHierarchy.from_matrix(matrix)

    t0 = time.perf_counter()
    compact = CompactSetTreeBuilder(max_exact_size=16).build(matrix)
    t_compact = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact = exact_mut(matrix, node_limit=400_000)
    t_exact = time.perf_counter() - t0

    gap = compact.cost / exact.cost - 1
    saved = 1 - t_compact / max(t_exact, 1e-9)
    print(f"{name:<22} {len(sets):>4} {hierarchy.max_subproblem_size():>6} "
          f"{t_exact:>9.3f}s {t_compact:>9.3f}s {100 * saved:>7.1f}% "
          f"{100 * gap:>+7.2f}%")


def main() -> None:
    n = 14
    print(f"all instances: {n} species\n")
    print(f"{'structure':<22} {'sets':>4} {'maxsub':>6} {'exact':>10} "
          f"{'compact':>10} {'saved':>8} {'cost gap':>8}")

    # Uniform random: compact sets are rare; decomposition degenerates.
    study("uniform random", random_metric_matrix(n, seed=1))

    # Flat clusters of growing tightness.
    study("two loose clusters", hierarchical_matrix([7, 7], seed=2, jitter=0.4))
    study("two tight clusters", hierarchical_matrix([7, 7], seed=2, jitter=0.1))

    # Nested structure: the decomposition shines.
    study("nested clusters", hierarchical_matrix([[4, 3], [4, 3]], seed=3, jitter=0.3))

    print(
        "\nreading: 'saved' is the construction-time reduction from the\n"
        "compact-set technique; 'cost gap' its distance from the optimal\n"
        "tree cost.  Structure in the data turns the technique from a\n"
        "no-op into a ~99% saving at <2% cost -- the paper's Figure 8/9."
    )


if __name__ == "__main__":
    main()
